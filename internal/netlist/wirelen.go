package netlist

// WirelenCache maintains per-net bounding boxes and half-perimeter
// wirelengths so single-cell moves cost O(pins-of-cell) amortized instead of
// recomputing every touched net from scratch. It is the wirelength oracle of
// the detailed placer's swap loop and is exposed for future incremental
// passes (timing-driven refinement, annealing).
//
// All cached values are bit-identical (math.Float64bits) to Design.NetHPWL /
// Design.HPWL on the same positions: the from-scratch recompute uses the
// exact comparison structure of NetHPWL, and the incremental expansion only
// replaces a bound on a strict inequality — the same rule NetHPWL applies —
// so a bound never changes bits without changing value.
//
// The cache assumes a frozen topology: positions change only through
// MoveCell (or are re-read wholesale by Rebuild). Adding instances, nets or
// pins invalidates the cache; call Rebuild afterwards.
type WirelenCache struct {
	d                      *Design
	minX, maxX, minY, maxY []float64
	hp                     []float64
}

// NewWirelenCache builds the cache from current pin positions in O(pins).
func NewWirelenCache(d *Design) *WirelenCache {
	c := &WirelenCache{d: d}
	c.Rebuild()
	return c
}

// Rebuild recomputes every net's bounding box from current positions.
func (c *WirelenCache) Rebuild() {
	n := len(c.d.Nets)
	if len(c.hp) != n {
		c.minX = make([]float64, n)
		c.maxX = make([]float64, n)
		c.minY = make([]float64, n)
		c.maxY = make([]float64, n)
		c.hp = make([]float64, n)
	}
	for i, net := range c.d.Nets {
		c.recompute(i, net)
	}
	if len(c.d.Insts) > 0 {
		// Force the connectivity index now so MoveCell stays allocation-free.
		c.d.NetsOf(0)
	}
}

// recompute rebuilds one net's bbox from scratch, mirroring NetHPWL.
func (c *WirelenCache) recompute(netID int, n *Net) {
	if len(n.Pins) < 2 {
		c.hp[netID] = 0
		return
	}
	minX, minY := 1e308, 1e308
	maxX, maxY := -1e308, -1e308
	for _, p := range n.Pins {
		x, y := c.d.PinPos(p)
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	c.minX[netID], c.maxX[netID] = minX, maxX
	c.minY[netID], c.maxY[netID] = minY, maxY
	c.hp[netID] = (maxX - minX) + (maxY - minY)
}

// NetHPWL returns the cached half-perimeter wirelength of a net in O(1).
func (c *WirelenCache) NetHPWL(netID int) float64 { return c.hp[netID] }

// Total returns the summed HPWL. Per-net values are added in net order — the
// same association as Design.HPWL — so the result is bit-identical to it.
func (c *WirelenCache) Total() float64 {
	var sum float64
	for _, v := range c.hp {
		sum += v
	}
	return sum
}

// MoveCell sets the instance origin to (x, y) and updates the bboxes of its
// incident nets. A net whose old bbox edge was defined by a moved pin that
// moves inward loses that edge to an unknown runner-up, forcing an exact
// recompute of the net; all other nets update by pure expansion in
// O(pins-of-cell). Steady-state calls allocate nothing.
func (c *WirelenCache) MoveCell(id int, x, y float64) {
	inst := c.d.Insts[id]
	oldX, oldY := inst.X, inst.Y
	inst.X, inst.Y = x, y
	if oldX == x && oldY == y {
		return
	}
	for _, netID := range c.d.NetsOf(id) {
		c.moveOnNet(netID, inst, oldX, oldY)
	}
}

func (c *WirelenCache) moveOnNet(netID int, inst *Instance, oldX, oldY float64) {
	n := c.d.Nets[netID]
	if len(n.Pins) < 2 {
		return
	}
	// Pass 1: does any moved pin own a bbox edge and move off it inward?
	// Then the new edge may be any other pin — recompute exactly.
	for _, p := range n.Pins {
		if p.IsPort() || p.Inst != inst.ID {
			continue
		}
		ox, oy := pinPosAt(inst, p.Pin, oldX, oldY)
		nx, ny := c.d.PinPos(p)
		if (ox == c.minX[netID] && nx > ox) || (ox == c.maxX[netID] && nx < ox) ||
			(oy == c.minY[netID] && ny > oy) || (oy == c.maxY[netID] && ny < oy) {
			c.recompute(netID, n)
			return
		}
	}
	// Pass 2: every moved pin stayed put or moved outward; expand the bbox.
	for _, p := range n.Pins {
		if p.IsPort() || p.Inst != inst.ID {
			continue
		}
		nx, ny := c.d.PinPos(p)
		if nx < c.minX[netID] {
			c.minX[netID] = nx
		}
		if nx > c.maxX[netID] {
			c.maxX[netID] = nx
		}
		if ny < c.minY[netID] {
			c.minY[netID] = ny
		}
		if ny > c.maxY[netID] {
			c.maxY[netID] = ny
		}
	}
	c.hp[netID] = (c.maxX[netID] - c.minX[netID]) + (c.maxY[netID] - c.minY[netID])
}

// pinPosAt is PinPos evaluated at a hypothetical instance origin, used for
// the pin's position before a move.
func pinPosAt(inst *Instance, pin string, x, y float64) (float64, float64) {
	if mp := inst.Master.Pin(pin); mp != nil && (mp.OffsetX != 0 || mp.OffsetY != 0) {
		return x + mp.OffsetX, y + mp.OffsetY
	}
	return x + inst.Master.Width/2, y + inst.Master.Height/2
}
