package netlist

// WirelenCache maintains per-net bounding boxes and half-perimeter
// wirelengths so single-cell moves cost O(pins-of-cell) amortized instead of
// recomputing every touched net from scratch. It is the wirelength oracle of
// the detailed placer's swap loop and is exposed for future incremental
// passes (timing-driven refinement, annealing).
//
// The cache runs on the design's Compact CSR view plus its own position
// mirrors (instance origins and port coordinates in flat arrays), so the
// move path walks contiguous int32/float64 memory with no master-pin map
// lookups.
//
// All cached values are bit-identical (math.Float64bits) to Design.NetHPWL /
// Design.HPWL on the same positions: the from-scratch recompute uses the
// exact comparison structure of NetHPWL over positions computed by PinPos's
// own rule (origin plus resolved offset), and the incremental expansion only
// replaces a bound on a strict inequality — the same rule NetHPWL applies —
// so a bound never changes bits without changing value.
//
// The cache assumes a frozen topology: positions change only through
// MoveCell (or are re-read wholesale by Rebuild). Adding instances, nets or
// pins invalidates the cache; call Rebuild afterwards.
type WirelenCache struct {
	d                      *Design
	cm                     *Compact
	minX, maxX, minY, maxY []float64
	hp                     []float64

	// Cache-owned position mirrors, indexed like Compact's pin references.
	// MoveCell writes instX/instY alongside Instance.X/Y; ports cannot move
	// through this cache, so portX/portY are snapshots from Rebuild.
	instX, instY []float64
	portX, portY []float64
}

// NewWirelenCache builds the cache from current pin positions in O(pins).
func NewWirelenCache(d *Design) *WirelenCache {
	c := &WirelenCache{d: d}
	c.Rebuild()
	return c
}

// Rebuild recomputes every net's bounding box from current positions and
// refreshes the compact connectivity snapshot.
func (c *WirelenCache) Rebuild() {
	c.cm = c.d.Compact()
	n := len(c.d.Nets)
	if len(c.hp) != n {
		c.minX = make([]float64, n)
		c.maxX = make([]float64, n)
		c.minY = make([]float64, n)
		c.maxY = make([]float64, n)
		c.hp = make([]float64, n)
	}
	if len(c.instX) != len(c.d.Insts) {
		c.instX = make([]float64, len(c.d.Insts))
		c.instY = make([]float64, len(c.d.Insts))
	}
	for i, inst := range c.d.Insts {
		c.instX[i] = inst.X
		c.instY[i] = inst.Y
	}
	if len(c.portX) != len(c.d.Ports) {
		c.portX = make([]float64, len(c.d.Ports))
		c.portY = make([]float64, len(c.d.Ports))
	}
	for i, p := range c.d.Ports {
		c.portX[i] = p.X
		c.portY[i] = p.Y
	}
	for i := 0; i < n; i++ {
		c.recompute(i)
	}
}

// recompute rebuilds one net's bbox from scratch, mirroring NetHPWL.
func (c *WirelenCache) recompute(netID int) {
	cm := c.cm
	lo, hi := cm.NetStart[netID], cm.NetStart[netID+1]
	if hi-lo < 2 {
		c.hp[netID] = 0
		return
	}
	minX, minY := 1e308, 1e308
	maxX, maxY := -1e308, -1e308
	for k := lo; k < hi; k++ {
		x, y := cm.pinXY(k, c.instX, c.instY, c.portX, c.portY)
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	c.minX[netID], c.maxX[netID] = minX, maxX
	c.minY[netID], c.maxY[netID] = minY, maxY
	c.hp[netID] = (maxX - minX) + (maxY - minY)
}

// NetHPWL returns the cached half-perimeter wirelength of a net in O(1).
func (c *WirelenCache) NetHPWL(netID int) float64 { return c.hp[netID] }

// Total returns the summed HPWL. Per-net values are added in net order — the
// same association as Design.HPWL — so the result is bit-identical to it.
func (c *WirelenCache) Total() float64 {
	var sum float64
	for _, v := range c.hp {
		sum += v
	}
	return sum
}

// MoveCell sets the instance origin to (x, y) and updates the bboxes of its
// incident nets. A net whose old bbox edge was defined by a moved pin that
// moves inward loses that edge to an unknown runner-up, forcing an exact
// recompute of the net; all other nets update by pure expansion in
// O(pins-of-cell). Steady-state calls allocate nothing.
func (c *WirelenCache) MoveCell(id int, x, y float64) {
	inst := c.d.Insts[id]
	oldX, oldY := inst.X, inst.Y
	inst.X, inst.Y = x, y
	c.instX[id], c.instY[id] = x, y
	if oldX == x && oldY == y {
		return
	}
	cm := c.cm
	for j := cm.InstStart[id]; j < cm.InstStart[id+1]; j++ {
		c.moveOnNet(int(cm.InstNets[j]), int32(id), oldX, oldY)
	}
}

func (c *WirelenCache) moveOnNet(netID int, id int32, oldX, oldY float64) {
	cm := c.cm
	lo, hi := cm.NetStart[netID], cm.NetStart[netID+1]
	if hi-lo < 2 {
		return
	}
	// Pass 1: does any moved pin own a bbox edge and move off it inward?
	// Then the new edge may be any other pin — recompute exactly.
	for k := lo; k < hi; k++ {
		if cm.PinInst[k] != id {
			continue
		}
		ox, oy := oldX+cm.PinDX[k], oldY+cm.PinDY[k]
		nx, ny := c.instX[id]+cm.PinDX[k], c.instY[id]+cm.PinDY[k]
		if (ox == c.minX[netID] && nx > ox) || (ox == c.maxX[netID] && nx < ox) ||
			(oy == c.minY[netID] && ny > oy) || (oy == c.maxY[netID] && ny < oy) {
			c.recompute(netID)
			return
		}
	}
	// Pass 2: every moved pin stayed put or moved outward; expand the bbox.
	for k := lo; k < hi; k++ {
		if cm.PinInst[k] != id {
			continue
		}
		nx, ny := c.instX[id]+cm.PinDX[k], c.instY[id]+cm.PinDY[k]
		if nx < c.minX[netID] {
			c.minX[netID] = nx
		}
		if nx > c.maxX[netID] {
			c.maxX[netID] = nx
		}
		if ny < c.minY[netID] {
			c.minY[netID] = ny
		}
		if ny > c.maxY[netID] {
			c.maxY[netID] = ny
		}
	}
	c.hp[netID] = (c.maxX[netID] - c.minX[netID]) + (c.maxY[netID] - c.minY[netID])
}
