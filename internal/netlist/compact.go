package netlist

import (
	"fmt"
	"math"

	"ppaclust/internal/par"
)

// Compact is the flat struct-of-arrays/CSR view of a design's connectivity,
// built once per topology and consumed by the hot paths (HPWL, WirelenCache,
// the global placer's system assembly). Where the pointer API walks
// *Net -> []PinRef -> *Instance -> *Master -> map lookup per pin, the compact
// view resolves every pin once at build time into three parallel arrays —
// owning instance (or port), and the pin's X/Y offset from the instance
// origin — so inner loops touch contiguous int32/float64 memory only.
//
// Index conventions:
//   - Net n's pins occupy PinInst/PinDX/PinDY[NetStart[n]:NetStart[n+1]],
//     in the net's pin order.
//   - PinInst[k] >= 0 is an instance ID; PinInst[k] < 0 encodes the port
//     with index -1-PinInst[k]; PinInst[k] == CompactNoPort marks a pin
//     reference naming an unknown port (PinPos convention: position (0,0)).
//   - Instance i's distinct incident nets occupy
//     InstNets[InstStart[i]:InstStart[i+1]] in ascending net-ID order — the
//     exact contents and order of Design.NetsOf(i).
//
// A Compact is a topology snapshot: it stays valid while only positions
// (Instance.X/Y, Port.X/Y) change. Any mutation through AddInstance, AddNet,
// AddPort, Connect, or InvalidateConnectivity retires it; the next
// Design.Compact() call rebuilds. Offsets are resolved with PinPos's rule —
// the master pin offset when either component is nonzero, otherwise the cell
// center — so a position computed as origin+offset is bit-identical to
// PinPos.
type Compact struct {
	d   *Design
	gen uint64

	// Net -> pin CSR.
	NetStart []int32
	PinInst  []int32
	PinDX    []float64
	PinDY    []float64
	// PinMP[k] is the master-pin index of pin k within its instance's master
	// (Master.PinIndex), or -1 for port pins and unknown instance pins.
	PinMP []int32

	// NetDrv[n] is the pin slot (index into PinInst) of net n's driver under
	// Design.Driver's rule — first instance pin whose master pin is an output,
	// else first pin naming an input port — or -1 for undriven nets.
	NetDrv []int32

	// Instance -> distinct incident nets CSR.
	InstStart []int32
	InstNets  []int32

	// Position gather scratch for HPWL (origins per instance, absolute per
	// port). Owned by the compact view: HPWL/HPWLWorkers overwrite it on
	// entry, so concurrent HPWL calls must not share one Compact.
	instX, instY []float64
	portX, portY []float64
}

// CompactNoPort marks a pin reference naming a port that does not exist in
// the design. PinPos resolves such references to (0, 0); the compact view
// preserves that convention.
const CompactNoPort int32 = -1 << 31

// NumNetPins returns the pin count of net n, including port pins.
func (c *Compact) NumNetPins(n int) int {
	return int(c.NetStart[n+1] - c.NetStart[n])
}

// Compact returns the design's flat connectivity view, building it on first
// use and after every topology mutation. The build is O(pins) and the result
// is cached, so repeated calls between mutations are free. A design whose
// total pin count exceeds math.MaxInt32 cannot be represented and panics;
// size-checked callers (the flow boundary) use CompactChecked instead.
func (d *Design) Compact() *Compact {
	c, err := d.CompactChecked()
	if err != nil {
		panic(err) //ppalint:ignore nopanic must-style wrapper over CompactChecked for pre-sized callers, matching designs' must/mustAdd idiom
	}
	return c
}

// CompactChecked is Compact with the pin-count capacity check surfaced as an
// error instead of a panic: the int32 CSR cannot index more than
// math.MaxInt32 pins, and past that bound truncation would silently corrupt
// connectivity.
func (d *Design) CompactChecked() (*Compact, error) {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	if d.compact != nil && d.compact.gen == d.topoGen {
		return d.compact, nil
	}
	c, err := buildCompact(d, d.topoGen)
	if err != nil {
		return nil, err
	}
	d.compact = c
	return c, nil
}

// InvalidateConnectivity retires the cached Compact view and lazy
// connectivity index after direct net-pin surgery (code that rewires
// Net.Pins in place instead of going through Connect, such as buffer
// insertion).
func (d *Design) InvalidateConnectivity() {
	d.topoGen++
	d.netsOfInst = nil
}

func buildCompact(d *Design, gen uint64) (*Compact, error) {
	c := &Compact{d: d, gen: gen}
	nPins := 0
	for _, n := range d.Nets {
		nPins += len(n.Pins)
	}
	// Every int32 below — pin slots, net ids, instance ids — is bounded by
	// nPins or by a count it dominates, so this single check covers the
	// build's conversions.
	if nPins > math.MaxInt32 {
		return nil, fmt.Errorf("netlist: design has %d pins, beyond the %d the int32 compact CSR can index", nPins, math.MaxInt32)
	}
	c.NetStart = make([]int32, len(d.Nets)+1)
	c.PinInst = make([]int32, 0, nPins)
	c.PinDX = make([]float64, 0, nPins)
	c.PinDY = make([]float64, 0, nPins)
	c.PinMP = make([]int32, 0, nPins)
	c.NetDrv = make([]int32, len(d.Nets))
	for ni, n := range d.Nets {
		c.NetStart[ni] = int32(len(c.PinInst))
		drvSlot := int32(-1)      // first output instance pin
		portDrvSlot := int32(-1)  // first input-port pin (fallback)
		for _, p := range n.Pins {
			var id int32
			var mpIdx int32 = -1
			var dx, dy float64
			slot := int32(len(c.PinInst))
			if p.IsPort() {
				if pi := d.PortIndex(p.Pin); pi >= 0 {
					id = -1 - int32(pi)
					if portDrvSlot < 0 && d.Ports[pi].Dir == DirInput {
						portDrvSlot = slot
					}
				} else {
					id = CompactNoPort
				}
			} else {
				id = int32(p.Inst)
				m := d.Insts[p.Inst].Master
				if i := m.PinIndex(p.Pin); i >= 0 {
					mpIdx = int32(i)
					mp := &m.Pins[i]
					if mp.OffsetX != 0 || mp.OffsetY != 0 {
						dx, dy = mp.OffsetX, mp.OffsetY
					} else {
						dx, dy = m.Width/2, m.Height/2
					}
					if drvSlot < 0 && mp.Dir == DirOutput {
						drvSlot = slot
					}
				} else {
					dx, dy = m.Width/2, m.Height/2
				}
			}
			c.PinInst = append(c.PinInst, id)
			c.PinDX = append(c.PinDX, dx)
			c.PinDY = append(c.PinDY, dy)
			c.PinMP = append(c.PinMP, mpIdx)
		}
		if drvSlot >= 0 {
			c.NetDrv[ni] = drvSlot
		} else {
			c.NetDrv[ni] = portDrvSlot
		}
	}
	c.NetStart[len(d.Nets)] = int32(len(c.PinInst))

	// Instance -> net CSR: count distinct instances per net (dedup with a
	// last-net stamp), prefix-sum, fill. Filling in net order reproduces
	// NetsOf's ascending net-ID order per instance.
	lastNet := make([]int32, len(d.Insts))
	for i := range lastNet {
		lastNet[i] = -1
	}
	deg := make([]int32, len(d.Insts))
	for ni := range d.Nets {
		for k := c.NetStart[ni]; k < c.NetStart[ni+1]; k++ {
			if id := c.PinInst[k]; id >= 0 && lastNet[id] != int32(ni) {
				lastNet[id] = int32(ni)
				deg[id]++
			}
		}
	}
	c.InstStart = make([]int32, len(d.Insts)+1)
	var total int32
	for i, dg := range deg {
		c.InstStart[i] = total
		total += dg
	}
	c.InstStart[len(d.Insts)] = total
	c.InstNets = make([]int32, total)
	fill := make([]int32, len(d.Insts))
	copy(fill, c.InstStart[:len(d.Insts)])
	for i := range lastNet {
		lastNet[i] = -1
	}
	for ni := range d.Nets {
		for k := c.NetStart[ni]; k < c.NetStart[ni+1]; k++ {
			if id := c.PinInst[k]; id >= 0 && lastNet[id] != int32(ni) {
				lastNet[id] = int32(ni)
				c.InstNets[fill[id]] = int32(ni)
				fill[id]++
			}
		}
	}
	return c, nil
}

// gatherPositions snapshots instance origins and port coordinates into the
// contiguous scratch arrays the HPWL kernels index.
func (c *Compact) gatherPositions() {
	d := c.d
	if len(c.instX) != len(d.Insts) {
		c.instX = make([]float64, len(d.Insts))
		c.instY = make([]float64, len(d.Insts))
	}
	for i, inst := range d.Insts {
		c.instX[i] = inst.X
		c.instY[i] = inst.Y
	}
	if len(c.portX) != len(d.Ports) {
		c.portX = make([]float64, len(d.Ports))
		c.portY = make([]float64, len(d.Ports))
	}
	for i, p := range d.Ports {
		c.portX[i] = p.X
		c.portY[i] = p.Y
	}
}

// pinXY resolves pin k against position arrays (instance origins instX/instY,
// absolute port coordinates portX/portY). The arithmetic — origin plus
// precomputed offset — matches PinPos bit for bit.
func (c *Compact) pinXY(k int32, instX, instY, portX, portY []float64) (float64, float64) {
	id := c.PinInst[k]
	if id >= 0 {
		return instX[id] + c.PinDX[k], instY[id] + c.PinDY[k]
	}
	if id == CompactNoPort {
		return 0, 0
	}
	return portX[-1-id], portY[-1-id]
}

// netHPWL computes net n's half-perimeter wirelength over the given position
// arrays with the same comparison structure as Design.NetHPWL, so the result
// is bit-identical to it.
func (c *Compact) netHPWL(n int, instX, instY, portX, portY []float64) float64 {
	lo, hi := c.NetStart[n], c.NetStart[n+1]
	if hi-lo < 2 {
		return 0
	}
	minX, minY := 1e308, 1e308
	maxX, maxY := -1e308, -1e308
	for k := lo; k < hi; k++ {
		x, y := c.pinXY(k, instX, instY, portX, portY)
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	return (maxX - minX) + (maxY - minY)
}

// HPWL returns the total half-perimeter wirelength over all nets, summed in
// net order. Per-net values and the total are bit-identical to the pointer
// API (Design.NetHPWL summed in net order).
func (c *Compact) HPWL() float64 {
	c.gatherPositions()
	var sum float64
	for n := 0; n < len(c.NetStart)-1; n++ {
		sum += c.netHPWL(n, c.instX, c.instY, c.portX, c.portY)
	}
	return sum
}

// HPWLWorkers returns the same total as HPWL, evaluating per-net lengths on
// up to workers goroutines. Per-net values land in slots and are summed
// sequentially in net order, so the result is bit-identical for any worker
// count.
func (c *Compact) HPWLWorkers(workers int) float64 {
	nNets := len(c.NetStart) - 1
	if workers <= 1 || nNets < 64 {
		return c.HPWL()
	}
	c.gatherPositions()
	per := par.Map(workers, nNets, func(n int) float64 {
		return c.netHPWL(n, c.instX, c.instY, c.portX, c.portY)
	})
	var sum float64
	for _, v := range per {
		sum += v
	}
	return sum
}
