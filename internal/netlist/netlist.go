// Package netlist is the design database shared by every stage of the flow:
// parsers fill it, timing/power analyze it, clustering coarsens it, placement
// and routing annotate geometry onto it.
//
// It plays the role OpenDB plays in the paper's flow: a single in-memory
// representation of the netlist (.v), library (.lib/.lef), floorplan (.def)
// and constraints (.sdc).
package netlist

import (
	"fmt"
	"strings"
	"sync"

	"ppaclust/internal/hypergraph"
)

// PinDir is the direction of a library pin or top-level port.
type PinDir int

// Pin directions.
const (
	DirInput PinDir = iota
	DirOutput
	DirInout
)

func (d PinDir) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	case DirInout:
		return "inout"
	}
	return "unknown"
}

// MasterClass distinguishes standard cells from macros and pads.
type MasterClass int

// Master classes.
const (
	ClassCore MasterClass = iota
	ClassMacro
	ClassPad
)

// ArcKind is the kind of a timing arc.
type ArcKind int

// Arc kinds.
const (
	ArcComb   ArcKind = iota // combinational input -> output
	ArcClkToQ                // clock edge -> output
	ArcSetup                 // setup check: data input vs clock
	ArcHold                  // hold check: data input vs clock
)

// Table is a 2-D NLDM-style lookup table indexed by input slew and output
// load. A table with empty axes is a constant (Values[0][0]).
type Table struct {
	Slews  []float64
	Loads  []float64
	Values [][]float64
}

// Const returns a constant table.
func Const(v float64) Table {
	return Table{Slews: []float64{0}, Loads: []float64{0}, Values: [][]float64{{v}}}
}

// Lookup bilinearly interpolates the table at (slew, load), clamping to the
// table boundary (the standard EDA extrapolation-free convention).
func (t *Table) Lookup(slew, load float64) float64 {
	if len(t.Values) == 0 {
		return 0
	}
	i0, i1, fi := locate(t.Slews, slew)
	j0, j1, fj := locate(t.Loads, load)
	v00 := t.Values[i0][j0]
	v01 := t.Values[i0][j1]
	v10 := t.Values[i1][j0]
	v11 := t.Values[i1][j1]
	return v00*(1-fi)*(1-fj) + v01*(1-fi)*fj + v10*fi*(1-fj) + v11*fi*fj
}

func locate(axis []float64, x float64) (lo, hi int, frac float64) {
	n := len(axis)
	if n <= 1 {
		return 0, 0, 0
	}
	if x <= axis[0] {
		return 0, 0, 0
	}
	if x >= axis[n-1] {
		return n - 1, n - 1, 0
	}
	for i := 1; i < n; i++ {
		if x <= axis[i] {
			f := (x - axis[i-1]) / (axis[i] - axis[i-1])
			return i - 1, i, f
		}
	}
	return n - 1, n - 1, 0
}

// TimingArc is one timing arc of a master pin. For ArcComb and ArcClkToQ the
// arc belongs to the output pin and From names the related input; for
// ArcSetup/ArcHold the arc belongs to the data input and From names the
// clock pin.
type TimingArc struct {
	From   string
	Kind   ArcKind
	Delay  Table
	Slew   Table
	Energy float64 // internal energy per output transition (J)
}

// MasterPin is a pin of a library master.
type MasterPin struct {
	Name    string
	Dir     PinDir
	Cap     float64 // input pin capacitance (F)
	MaxCap  float64 // max load for outputs (F); 0 = unlimited
	Clock   bool
	OffsetX float64 // pin location relative to instance origin
	OffsetY float64
	Arcs    []TimingArc
}

// Master is a library cell (standard cell or macro).
type Master struct {
	Name    string
	Class   MasterClass
	Width   float64
	Height  float64
	Leakage float64 // leakage power (W)
	Pins    []MasterPin
	pinIdx  map[string]int
}

// AddPin appends a pin to the master and returns it.
func (m *Master) AddPin(p MasterPin) *MasterPin {
	if m.pinIdx == nil {
		m.pinIdx = make(map[string]int)
	}
	m.Pins = append(m.Pins, p)
	m.pinIdx[p.Name] = len(m.Pins) - 1
	return &m.Pins[len(m.Pins)-1]
}

// Pin returns the pin with the given name, or nil.
func (m *Master) Pin(name string) *MasterPin {
	if i, ok := m.pinIdx[name]; ok {
		return &m.Pins[i]
	}
	return nil
}

// PinIndex returns the index of the named pin in Pins, or -1. Flat consumers
// (the compact STA graph) key per-instance pin arrays by this index instead
// of hashing pin-name strings.
func (m *Master) PinIndex(name string) int {
	if i, ok := m.pinIdx[name]; ok {
		return i
	}
	return -1
}

// Area returns the footprint area of the master.
func (m *Master) Area() float64 { return m.Width * m.Height }

// IsSequential reports whether the master has any clock-to-output arc.
func (m *Master) IsSequential() bool {
	for i := range m.Pins {
		for j := range m.Pins[i].Arcs {
			if m.Pins[i].Arcs[j].Kind == ArcClkToQ {
				return true
			}
		}
	}
	return false
}

// Library is a set of masters plus unit conventions. Times are seconds,
// capacitances farads, powers watts, distances microns throughout.
type Library struct {
	Name    string
	masters map[string]*Master
	order   []string
}

// NewLibrary returns an empty library.
func NewLibrary(name string) *Library {
	return &Library{Name: name, masters: make(map[string]*Master)}
}

// AddMaster registers a master; it fails on duplicate names.
func (l *Library) AddMaster(m *Master) error {
	if _, dup := l.masters[m.Name]; dup {
		return fmt.Errorf("library %s: duplicate master %q", l.Name, m.Name)
	}
	l.masters[m.Name] = m
	l.order = append(l.order, m.Name)
	return nil
}

// Master returns the master with the given name, or nil.
func (l *Library) Master(name string) *Master { return l.masters[name] }

// MasterNames returns master names in registration order.
func (l *Library) MasterNames() []string { return l.order }

// Rect is an axis-aligned rectangle.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// W returns the rectangle width.
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the rectangle height.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Contains reports whether (x,y) lies inside the rectangle.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x <= r.X1 && y >= r.Y0 && y <= r.Y1
}

// PinRef identifies one connection of a net: either pin Pin of instance
// Inst, or (when Inst < 0) the top-level port named Pin.
type PinRef struct {
	Inst int
	Pin  string
}

// IsPort reports whether the reference names a top-level port.
func (p PinRef) IsPort() bool { return p.Inst < 0 }

// Net is a hyperedge of the netlist.
type Net struct {
	ID     int
	Name   string
	Pins   []PinRef
	Weight float64 // placement net weight (default 1)
	Clock  bool    // marked by SDC clock propagation
}

// Port is a top-level IO of the design.
type Port struct {
	Name   string
	Dir    PinDir
	X, Y   float64
	Placed bool
}

// Instance is a placed (or yet unplaced) occurrence of a master.
type Instance struct {
	ID     int
	Name   string // full hierarchical name, '/'-separated
	Master *Master
	X, Y   float64 // lower-left corner when placed
	Placed bool
	Fixed  bool
}

// CenterX returns the x coordinate of the instance center.
func (i *Instance) CenterX() float64 { return i.X + i.Master.Width/2 }

// CenterY returns the y coordinate of the instance center.
func (i *Instance) CenterY() float64 { return i.Y + i.Master.Height/2 }

// HierPath returns the hierarchical scope names of the instance, excluding
// the leaf instance name itself. A flat instance returns nil.
func (i *Instance) HierPath() []string {
	parts := strings.Split(i.Name, "/")
	if len(parts) <= 1 {
		return nil
	}
	return parts[:len(parts)-1]
}

// Design is the complete in-memory design.
type Design struct {
	Name      string
	Lib       *Library
	Insts     []*Instance
	Nets      []*Net
	Ports     []*Port
	Die       Rect
	Core      Rect
	RowHeight float64
	SiteWidth float64

	instByName map[string]int
	netByName  map[string]int
	portByName map[string]int
	netsOfInst [][]int // lazily built connectivity index

	// Compact-view cache: topoGen counts topology mutations; the cached
	// view is valid while its generation matches.
	topoGen   uint64
	compact   *Compact
	compactMu sync.Mutex
}

// NewDesign returns an empty design bound to the given library.
func NewDesign(name string, lib *Library) *Design {
	return NewDesignSized(name, lib, 0, 0)
}

// NewDesignSized returns an empty design with name-index maps pre-sized for
// the expected instance and net counts, so million-cell construction does not
// rehash-thrash. Zero capacities behave like NewDesign.
func NewDesignSized(name string, lib *Library, instCap, netCap int) *Design {
	return &Design{
		Name:       name,
		Lib:        lib,
		Insts:      make([]*Instance, 0, instCap),
		Nets:       make([]*Net, 0, netCap),
		instByName: make(map[string]int, instCap),
		netByName:  make(map[string]int, netCap),
		portByName: make(map[string]int),
	}
}

// AddInstance creates an instance of master and returns it.
func (d *Design) AddInstance(name string, master *Master) (*Instance, error) {
	if master == nil {
		return nil, fmt.Errorf("design %s: instance %q has nil master", d.Name, name)
	}
	if _, dup := d.instByName[name]; dup {
		return nil, fmt.Errorf("design %s: duplicate instance %q", d.Name, name)
	}
	inst := &Instance{ID: len(d.Insts), Name: name, Master: master}
	d.Insts = append(d.Insts, inst)
	d.instByName[name] = inst.ID
	d.netsOfInst = nil
	d.topoGen++
	return inst, nil
}

// AddNet creates an empty net and returns it.
func (d *Design) AddNet(name string) (*Net, error) {
	if _, dup := d.netByName[name]; dup {
		return nil, fmt.Errorf("design %s: duplicate net %q", d.Name, name)
	}
	n := &Net{ID: len(d.Nets), Name: name, Weight: 1}
	d.Nets = append(d.Nets, n)
	d.netByName[name] = n.ID
	d.topoGen++
	return n, nil
}

// AddPort creates a top-level port and returns it.
func (d *Design) AddPort(name string, dir PinDir) (*Port, error) {
	if _, dup := d.portByName[name]; dup {
		return nil, fmt.Errorf("design %s: duplicate port %q", d.Name, name)
	}
	p := &Port{Name: name, Dir: dir}
	d.Ports = append(d.Ports, p)
	d.portByName[name] = len(d.Ports) - 1
	d.topoGen++
	return p, nil
}

// Connect attaches pin ref to net n. It does not check for duplicates; real
// netlists legitimately connect one net to an instance on multiple pins.
func (d *Design) Connect(n *Net, ref PinRef) {
	n.Pins = append(n.Pins, ref)
	d.netsOfInst = nil
	d.topoGen++
}

// Instance returns the instance with the given name, or nil.
func (d *Design) Instance(name string) *Instance {
	if i, ok := d.instByName[name]; ok {
		return d.Insts[i]
	}
	return nil
}

// Net returns the net with the given name, or nil.
func (d *Design) Net(name string) *Net {
	if i, ok := d.netByName[name]; ok {
		return d.Nets[i]
	}
	return nil
}

// Port returns the port with the given name, or nil.
func (d *Design) Port(name string) *Port {
	if i, ok := d.portByName[name]; ok {
		return d.Ports[i]
	}
	return nil
}

// PortIndex returns the index of the named port, or -1.
func (d *Design) PortIndex(name string) int {
	if i, ok := d.portByName[name]; ok {
		return i
	}
	return -1
}

// NetsOf returns the IDs of nets connected to instance id.
func (d *Design) NetsOf(id int) []int {
	if d.netsOfInst == nil {
		d.netsOfInst = make([][]int, len(d.Insts))
		for _, n := range d.Nets {
			seen := make(map[int]bool, len(n.Pins))
			for _, p := range n.Pins {
				if !p.IsPort() && !seen[p.Inst] {
					seen[p.Inst] = true
					d.netsOfInst[p.Inst] = append(d.netsOfInst[p.Inst], n.ID)
				}
			}
		}
	}
	return d.netsOfInst[id]
}

// Driver returns the driving pin reference of net n: the first output
// instance pin, else the first input port. ok is false for undriven nets.
func (d *Design) Driver(n *Net) (PinRef, bool) {
	for _, p := range n.Pins {
		if p.IsPort() {
			continue
		}
		mp := d.Insts[p.Inst].Master.Pin(p.Pin)
		if mp != nil && mp.Dir == DirOutput {
			return p, true
		}
	}
	for _, p := range n.Pins {
		if p.IsPort() {
			if port := d.Port(p.Pin); port != nil && port.Dir == DirInput {
				return p, true
			}
		}
	}
	return PinRef{}, false
}

// PinPos returns the physical position of a pin reference. Instance pins use
// the master pin offset when available, otherwise the instance center.
func (d *Design) PinPos(p PinRef) (x, y float64) {
	if p.IsPort() {
		port := d.Port(p.Pin)
		if port == nil {
			return 0, 0
		}
		return port.X, port.Y
	}
	inst := d.Insts[p.Inst]
	if mp := inst.Master.Pin(p.Pin); mp != nil && (mp.OffsetX != 0 || mp.OffsetY != 0) {
		return inst.X + mp.OffsetX, inst.Y + mp.OffsetY
	}
	return inst.CenterX(), inst.CenterY()
}

// NetHPWL returns the half-perimeter wirelength of net n.
func (d *Design) NetHPWL(n *Net) float64 {
	if len(n.Pins) < 2 {
		return 0
	}
	minX, minY := 1e308, 1e308
	maxX, maxY := -1e308, -1e308
	for _, p := range n.Pins {
		x, y := d.PinPos(p)
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	return (maxX - minX) + (maxY - minY)
}

// HPWL returns the total half-perimeter wirelength over all nets. It runs on
// the flat Compact view (contiguous pin arrays instead of per-pin pointer
// chasing); the per-net values and the net-order sum are bit-identical to
// summing NetHPWL over d.Nets.
func (d *Design) HPWL() float64 {
	return d.Compact().HPWL()
}

// HPWLWorkers returns the same total as HPWL, evaluating per-net lengths on
// up to workers goroutines. The per-net values land in slots and are summed
// sequentially in net order — the same association as HPWL — so the result
// is bit-identical for any worker count.
func (d *Design) HPWLWorkers(workers int) float64 {
	return d.Compact().HPWLWorkers(workers)
}

// TotalCellArea returns the summed footprint area of all instances.
func (d *Design) TotalCellArea() float64 {
	var a float64
	for _, inst := range d.Insts {
		a += inst.Master.Area()
	}
	return a
}

// Utilization returns cell area divided by core area.
func (d *Design) Utilization() float64 {
	ca := d.Core.Area()
	if ca <= 0 {
		return 0
	}
	return d.TotalCellArea() / ca
}

// HypergraphView maps a design onto a hypergraph whose vertices are
// instances (in ID order) and whose edges are nets with at least two
// distinct instance pins.
type HypergraphView struct {
	H *hypergraph.Hypergraph
	// NetOfEdge maps hypergraph edge ID to design net ID.
	NetOfEdge []int
	// EdgeOfNet maps design net ID to hypergraph edge ID, or -1.
	EdgeOfNet []int
	// IOEdge marks edges whose net also touches a top-level port.
	IOEdge []bool
}

// ToHypergraph builds the clustering view of the design. Vertex weights are
// instance areas; edge weights are net weights. The build runs on the
// Compact CSR view with an epoch-stamped dedup scratch, so a million-cell
// design maps without per-net map allocation.
func (d *Design) ToHypergraph() *HypergraphView {
	c := d.Compact()
	h := hypergraph.NewWithCap(len(d.Insts), len(d.Nets), len(c.PinInst))
	for _, inst := range d.Insts {
		h.SetVertexWeight(inst.ID, inst.Master.Area())
	}
	view := &HypergraphView{
		H:         h,
		EdgeOfNet: make([]int, len(d.Nets)),
		NetOfEdge: make([]int, 0, len(d.Nets)),
		IOEdge:    make([]bool, 0, len(d.Nets)),
	}
	stamp := make([]int32, len(d.Insts))
	for i := range stamp {
		stamp[i] = -1
	}
	var verts []int
	for ni, n := range d.Nets {
		verts = verts[:0]
		io := false
		for k := c.NetStart[ni]; k < c.NetStart[ni+1]; k++ {
			id := c.PinInst[k]
			if id < 0 {
				io = true
			} else if stamp[id] != int32(ni) {
				stamp[id] = int32(ni)
				verts = append(verts, int(id))
			}
		}
		if len(verts) < 2 {
			view.EdgeOfNet[ni] = -1
			continue
		}
		e := h.AddEdge(verts, n.Weight)
		view.EdgeOfNet[ni] = e
		view.NetOfEdge = append(view.NetOfEdge, ni)
		view.IOEdge = append(view.IOEdge, io)
	}
	return view
}

// Validate checks referential integrity of the design.
func (d *Design) Validate() error {
	for _, inst := range d.Insts {
		if inst.Master == nil {
			return fmt.Errorf("instance %q has nil master", inst.Name)
		}
	}
	for _, n := range d.Nets {
		for _, p := range n.Pins {
			if p.IsPort() {
				if d.Port(p.Pin) == nil {
					return fmt.Errorf("net %q references unknown port %q", n.Name, p.Pin)
				}
				continue
			}
			if p.Inst >= len(d.Insts) {
				return fmt.Errorf("net %q references instance %d out of range", n.Name, p.Inst)
			}
			if d.Insts[p.Inst].Master.Pin(p.Pin) == nil {
				return fmt.Errorf("net %q references unknown pin %s/%s", n.Name, d.Insts[p.Inst].Name, p.Pin)
			}
		}
	}
	return nil
}

// Clone deep-copies the design's instances, nets and ports (the library is
// shared, as masters are immutable during a flow).
func (d *Design) Clone() *Design {
	c := NewDesign(d.Name, d.Lib)
	c.Die, c.Core = d.Die, d.Core
	c.RowHeight, c.SiteWidth = d.RowHeight, d.SiteWidth
	c.Insts = make([]*Instance, len(d.Insts))
	for i, inst := range d.Insts {
		cp := *inst
		c.Insts[i] = &cp
		c.instByName[cp.Name] = i
	}
	c.Nets = make([]*Net, len(d.Nets))
	for i, n := range d.Nets {
		cp := *n
		cp.Pins = append([]PinRef(nil), n.Pins...)
		c.Nets[i] = &cp
		c.netByName[cp.Name] = i
	}
	c.Ports = make([]*Port, len(d.Ports))
	for i, p := range d.Ports {
		cp := *p
		c.Ports[i] = &cp
		c.portByName[cp.Name] = i
	}
	return c
}

// Stats summarizes a design for reporting (Table 1 of the paper).
type Stats struct {
	Name   string
	Insts  int
	Nets   int
	Ports  int
	Macros int
	Seq    int
	Area   float64
}

// Stats returns summary statistics of the design.
func (d *Design) Stats() Stats {
	s := Stats{Name: d.Name, Insts: len(d.Insts), Nets: len(d.Nets), Ports: len(d.Ports)}
	for _, inst := range d.Insts {
		if inst.Master.Class == ClassMacro {
			s.Macros++
		}
		if inst.Master.IsSequential() {
			s.Seq++
		}
		s.Area += inst.Master.Area()
	}
	return s
}
