package netlist

import (
	"math"
	"testing"
)

func TestTableSinglePoint(t *testing.T) {
	tab := Table{Slews: []float64{1}, Loads: []float64{2}, Values: [][]float64{{42}}}
	if tab.Lookup(0, 0) != 42 || tab.Lookup(100, 100) != 42 {
		t.Fatal("single-point table should be constant")
	}
	var empty Table
	if empty.Lookup(1, 1) != 0 {
		t.Fatal("empty table should read 0")
	}
}

func TestDriverPrefersOutputOverInputPort(t *testing.T) {
	lib := testLib()
	d := NewDesign("drv", lib)
	in, _ := d.AddPort("in", DirInput)
	_ = in
	g, _ := d.AddInstance("g", lib.Master("INV"))
	n, _ := d.AddNet("n")
	// Port listed first, but the instance output must win.
	d.Connect(n, PinRef{Inst: -1, Pin: "in"})
	d.Connect(n, PinRef{Inst: g.ID, Pin: "Y"})
	drv, ok := d.Driver(n)
	if !ok || drv.IsPort() || drv.Pin != "Y" {
		t.Fatalf("driver=%+v", drv)
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{X0: 1, Y0: 2, X1: 5, Y1: 10}
	if r.W() != 4 || r.H() != 8 || r.Area() != 32 {
		t.Fatal("rect dims")
	}
	if !r.Contains(3, 5) || r.Contains(0, 5) || r.Contains(3, 11) {
		t.Fatal("contains")
	}
}

func TestPinDirString(t *testing.T) {
	if DirInput.String() != "input" || DirOutput.String() != "output" || DirInout.String() != "inout" {
		t.Fatal("dir strings")
	}
	if PinDir(99).String() != "unknown" {
		t.Fatal("unknown dir")
	}
}

func TestNetHPWLWithPortOnly(t *testing.T) {
	lib := testLib()
	d := NewDesign("p", lib)
	a, _ := d.AddPort("a", DirInput)
	a.X, a.Y = 0, 0
	b, _ := d.AddPort("b", DirOutput)
	b.X, b.Y = 3, 4
	n, _ := d.AddNet("n")
	d.Connect(n, PinRef{Inst: -1, Pin: "a"})
	d.Connect(n, PinRef{Inst: -1, Pin: "b"})
	if got := d.NetHPWL(n); math.Abs(got-7) > 1e-12 {
		t.Fatalf("hpwl=%v want 7", got)
	}
}
