package hypergraph

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func buildSample() *Hypergraph {
	// Six vertices, two natural clusters {0,1,2} and {3,4,5}, one cut edge.
	h := New(6)
	for v := 0; v < 6; v++ {
		h.SetVertexWeight(v, 1)
	}
	h.AddEdge([]int{0, 1}, 1)
	h.AddEdge([]int{1, 2}, 1)
	h.AddEdge([]int{0, 2}, 1)
	h.AddEdge([]int{3, 4}, 1)
	h.AddEdge([]int{4, 5}, 1)
	h.AddEdge([]int{3, 5}, 1)
	h.AddEdge([]int{2, 3}, 1)
	return h
}

func TestBasicCounts(t *testing.T) {
	h := buildSample()
	if h.NumVertices() != 6 || h.NumEdges() != 7 || h.NumPins() != 14 {
		t.Fatalf("got V=%d E=%d P=%d", h.NumVertices(), h.NumEdges(), h.NumPins())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.Degree(2); got != 3 {
		t.Fatalf("degree(2)=%d want 3", got)
	}
	if got := h.Neighbors(2); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("neighbors(2)=%v", got)
	}
}

func TestAddEdgeDedupes(t *testing.T) {
	h := New(3)
	e := h.AddEdge([]int{2, 0, 2, 1, 0}, 1.5)
	if got := h.Edge(e); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("edge=%v", got)
	}
	if h.NumPins() != 3 {
		t.Fatalf("pins=%d", h.NumPins())
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge([]int{0, 5}, 1)
}

func TestCutSize(t *testing.T) {
	h := buildSample()
	cut := h.CutSize([]int{0, 0, 0, 1, 1, 1})
	if cut != 1 {
		t.Fatalf("cut=%v want 1", cut)
	}
	if got := h.CutSize([]int{0, 0, 0, 0, 0, 0}); got != 0 {
		t.Fatalf("single-cluster cut=%v", got)
	}
	if got := h.CutSize([]int{0, 1, 2, 3, 4, 5}); got != 7 {
		t.Fatalf("all-singleton cut=%v want 7", got)
	}
}

func TestContract(t *testing.T) {
	h := buildSample()
	c, err := h.Contract([]int{7, 7, 7, 9, 9, 9}) // sparse labels allowed
	if err != nil {
		t.Fatal(err)
	}
	g := c.Coarse
	if g.NumVertices() != 2 {
		t.Fatalf("coarse V=%d", g.NumVertices())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("coarse E=%d want 1 (internal edges dropped, cut edge kept)", g.NumEdges())
	}
	if g.EdgeWeight(0) != 1 {
		t.Fatalf("coarse edge weight=%v", g.EdgeWeight(0))
	}
	if g.VertexWeight(0) != 3 || g.VertexWeight(1) != 3 {
		t.Fatalf("coarse weights %v %v", g.VertexWeight(0), g.VertexWeight(1))
	}
	// Edge map: the six intra edges map to -1, the cut edge to 0.
	for e := 0; e < 6; e++ {
		if c.EdgeMap[e] != -1 {
			t.Fatalf("edge %d mapped to %d, want -1", e, c.EdgeMap[e])
		}
	}
	if c.EdgeMap[6] != 0 {
		t.Fatalf("cut edge mapped to %d", c.EdgeMap[6])
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContractMergesParallelEdges(t *testing.T) {
	h := New(4)
	h.AddEdge([]int{0, 2}, 1)
	h.AddEdge([]int{1, 3}, 2)
	h.AddEdge([]int{0, 3}, 4)
	c, err := h.Contract([]int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.NumEdges() != 1 {
		t.Fatalf("E=%d want 1", c.Coarse.NumEdges())
	}
	if c.Coarse.EdgeWeight(0) != 7 {
		t.Fatalf("w=%v want 7", c.Coarse.EdgeWeight(0))
	}
}

func TestContractBadMap(t *testing.T) {
	h := buildSample()
	if _, err := h.Contract([]int{0, 1}); err == nil {
		t.Fatal("expected error for short cluster map")
	}
}

func TestClusterStats(t *testing.T) {
	h := buildSample()
	stats := h.ClusterStatsFor([]int{0, 0, 0, 1, 1, 1})
	s0 := stats[0]
	if s0.Size != 3 || s0.ExternalEdge != 1 || s0.ExternalPins != 1 || s0.InternalPins != 6 {
		t.Fatalf("stats0=%+v", *s0)
	}
	r := s0.RentExponent()
	want := math.Log(1.0/7.0)/math.Log(3.0) + 1
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("rent=%v want %v", r, want)
	}
}

func TestRentDegenerate(t *testing.T) {
	if !math.IsNaN((ClusterStats{Size: 1, ExternalEdge: 2, ExternalPins: 2}).RentExponent()) {
		t.Fatal("singleton should be NaN")
	}
	if !math.IsNaN((ClusterStats{Size: 3}).RentExponent()) {
		t.Fatal("pinless cluster should be NaN")
	}
}

func TestWeightedAvgRentPrefersGoodClustering(t *testing.T) {
	h := buildSample()
	good := h.WeightedAvgRent([]int{0, 0, 0, 1, 1, 1})
	bad := h.WeightedAvgRent([]int{0, 1, 0, 1, 0, 1})
	if !(good < bad) {
		t.Fatalf("good=%v should beat bad=%v", good, bad)
	}
}

// TestWeightedAvgRentDeterministic pins the maporder fix: R_avg must be
// bit-identical across repeated evaluations. Before the fix the
// size-weighted sum ran in map-iteration order, so float non-associativity
// let the result wobble between runs on many-cluster inputs; summing in
// sorted cluster order is the same multiset sum with a fixed bracketing.
func TestWeightedAvgRentDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 300
	h := New(n)
	for v := 0; v < n; v++ {
		h.SetVertexWeight(v, 1+rng.Float64())
	}
	for e := 0; e < 900; e++ {
		deg := 2 + rng.Intn(4)
		verts := make([]int, deg)
		for i := range verts {
			verts[i] = rng.Intn(n)
		}
		h.AddEdge(verts, 1)
	}
	clusterOf := make([]int, n)
	for v := range clusterOf {
		clusterOf[v] = rng.Intn(60)
	}
	want := h.WeightedAvgRent(clusterOf)
	if math.IsNaN(want) {
		t.Fatal("R_avg is NaN on a connected sample")
	}
	for i := 0; i < 20; i++ {
		if got := h.WeightedAvgRent(clusterOf); got != want {
			t.Fatalf("run %d: R_avg = %v, want bit-identical %v", i, got, want)
		}
	}
}

func TestCliqueExpand(t *testing.T) {
	h := New(3)
	h.AddEdge([]int{0, 1, 2}, 2) // clique weight 2/(3-1) = 1 per pair
	h.AddEdge([]int{0, 1}, 3)    // extra 3 on pair (0,1)
	g := h.CliqueExpand()
	var w01 float64
	for _, half := range g.Adj(0) {
		if half.To == 1 {
			w01 = half.Weight
		}
	}
	if w01 != 4 {
		t.Fatalf("w(0,1)=%v want 4", w01)
	}
	if g.WeightedDegree(2) != 2 {
		t.Fatalf("wdeg(2)=%v want 2", g.WeightedDegree(2))
	}
}

func TestGraphSelfLoopAndMerge(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 2)
	g.AddEdge(0, 0, 5)
	g.Finish()
	if len(g.Adj(0)) != 1 || g.Adj(0)[0].Weight != 3 {
		t.Fatalf("adj(0)=%v", g.Adj(0))
	}
	if g.SelfLoop(0) != 5 {
		t.Fatalf("selfloop=%v", g.SelfLoop(0))
	}
	if g.WeightedDegree(0) != 13 {
		t.Fatalf("wdeg=%v want 13 (2*5+3)", g.WeightedDegree(0))
	}
	if g.TotalWeight() != 8 {
		t.Fatalf("total=%v want 8", g.TotalWeight())
	}
}

// randomHypergraph builds a reproducible random hypergraph for property tests.
func randomHypergraph(rng *rand.Rand, nv, ne int) *Hypergraph {
	h := New(nv)
	for v := 0; v < nv; v++ {
		h.SetVertexWeight(v, 1+rng.Float64())
	}
	for e := 0; e < ne; e++ {
		k := 2 + rng.Intn(4)
		verts := make([]int, k)
		for i := range verts {
			verts[i] = rng.Intn(nv)
		}
		h.AddEdge(verts, 0.5+rng.Float64())
	}
	return h
}

func TestPropertyContractPreservesWeightAndCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 5 + rng.Intn(40)
		h := randomHypergraph(rng, nv, nv*2)
		clusterOf := make([]int, nv)
		k := 1 + rng.Intn(6)
		for v := range clusterOf {
			clusterOf[v] = rng.Intn(k)
		}
		c, err := h.Contract(clusterOf)
		if err != nil {
			return false
		}
		// Total vertex weight is preserved.
		if math.Abs(c.Coarse.TotalVertexWeight()-h.TotalVertexWeight()) > 1e-9 {
			return false
		}
		// Total coarse edge weight equals the fine cut under clusterOf.
		var coarseW float64
		for e := 0; e < c.Coarse.NumEdges(); e++ {
			coarseW += c.Coarse.EdgeWeight(e)
		}
		if math.Abs(coarseW-h.CutSize(clusterOf)) > 1e-9 {
			return false
		}
		// EdgeMap is consistent: fine edge spans >1 cluster iff mapped.
		for e := 0; e < h.NumEdges(); e++ {
			verts := h.Edge(e)
			span := map[int]bool{}
			for _, v := range verts {
				span[clusterOf[v]] = true
			}
			if (len(span) > 1) != (c.EdgeMap[e] >= 0) {
				return false
			}
		}
		return c.Coarse.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRentExponentBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 6 + rng.Intn(30)
		h := randomHypergraph(rng, nv, nv*3)
		clusterOf := make([]int, nv)
		for v := range clusterOf {
			clusterOf[v] = rng.Intn(4)
		}
		for _, s := range h.ClusterStatsFor(clusterOf) {
			r := s.RentExponent()
			if math.IsNaN(r) {
				continue
			}
			// External edges never exceed total pins, so R_c <= 1; and a
			// cluster has at least one pin per external edge, bounding below.
			if r > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCliqueExpandDegreeSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 4 + rng.Intn(20)
		h := randomHypergraph(rng, nv, nv*2)
		g := h.CliqueExpand()
		// Sum of weighted degrees equals twice the total weight.
		var sum float64
		for v := 0; v < g.NumVertices(); v++ {
			sum += g.WeightedDegree(v)
		}
		return math.Abs(sum-2*g.TotalWeight()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// dedupe sorts and uniques a copy of vs — the semantics AddEdge applies to
// its vertex list, reimplemented here so the reference stays self-contained.
func dedupe(vs []int) []int {
	s := make([]int, len(vs))
	copy(s, vs)
	sort.Ints(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// sameEdges reports whether two hypergraphs store the identical edge list
// (same order, same vertex sets), comparing through the public API.
func sameEdges(a, b *Hypergraph) bool {
	if a.NumEdges() != b.NumEdges() {
		return false
	}
	for e := 0; e < a.NumEdges(); e++ {
		if !reflect.DeepEqual(a.Edge(e), b.Edge(e)) {
			return false
		}
	}
	return true
}

// contractReference is the pre-optimization Contract (string-keyed parallel
// edge merging), kept as an executable spec for the hashed implementation.
func contractReference(h *Hypergraph, clusterOf []int) *Contraction {
	dense := make(map[int]int)
	vmap := make([]int, len(clusterOf))
	for v, c := range clusterOf {
		id, ok := dense[c]
		if !ok {
			id = len(dense)
			dense[c] = id
		}
		vmap[v] = id
	}
	coarse := New(len(dense))
	for v, cv := range vmap {
		coarse.vertexWeight[cv] += h.vertexWeight[v]
	}
	byKey := make(map[string]int)
	emap := make([]int, h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		verts := h.Edge(e)
		mapped := make([]int, 0, len(verts))
		for _, v := range verts {
			mapped = append(mapped, vmap[v])
		}
		mapped = dedupe(mapped)
		if len(mapped) < 2 {
			emap[e] = -1
			continue
		}
		var key []byte
		for _, v := range mapped {
			key = fmt.Appendf(key, "%d,", v)
		}
		if id, ok := byKey[string(key)]; ok {
			coarse.edgeWeight[id] += h.edgeWeight[e]
			emap[e] = id
			continue
		}
		id := coarse.AddEdge(mapped, h.edgeWeight[e])
		byKey[string(key)] = id
		emap[e] = id
	}
	return &Contraction{Coarse: coarse, VertexMap: vmap, EdgeMap: emap}
}

// TestContractMatchesReference checks the integer-hash Contract against the
// string-key reference on random graphs: identical coarse edges (order
// included), weights, and vertex/edge maps.
func TestContractMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 5 + rng.Intn(60)
		h := randomHypergraph(rng, nv, nv*3)
		clusterOf := make([]int, nv)
		k := 1 + rng.Intn(8)
		for v := range clusterOf {
			clusterOf[v] = rng.Intn(k) * 17 // sparse labels
		}
		got, err := h.Contract(clusterOf)
		if err != nil {
			return false
		}
		want := contractReference(h, clusterOf)
		if !reflect.DeepEqual(got.VertexMap, want.VertexMap) ||
			!reflect.DeepEqual(got.EdgeMap, want.EdgeMap) ||
			!sameEdges(got.Coarse, want.Coarse) ||
			!reflect.DeepEqual(got.Coarse.edgeWeight, want.Coarse.edgeWeight) ||
			!reflect.DeepEqual(got.Coarse.vertexWeight, want.Coarse.vertexWeight) {
			return false
		}
		return got.Coarse.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestNeighborsAllocFree asserts the epoch-stamped scratch keeps repeated
// Neighbors queries allocation-free in steady state.
func TestNeighborsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := randomHypergraph(rng, 400, 900)
	for v := 0; v < h.NumVertices(); v++ {
		h.Neighbors(v) // grow the scratch buffers to their steady size
	}
	v := 0
	allocs := testing.AllocsPerRun(200, func() {
		h.Neighbors(v % h.NumVertices())
		v++
	})
	if allocs != 0 {
		t.Fatalf("Neighbors allocates %v per call, want 0", allocs)
	}
}

// TestNeighborsMatchesNaive cross-checks the scratch-buffer implementation
// against a straightforward map-based one.
func TestNeighborsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	h := randomHypergraph(rng, 60, 150)
	for v := 0; v < h.NumVertices(); v++ {
		seen := map[int]bool{v: true}
		var want []int
		for _, e := range h.Incident(v) {
			for _, u := range h.Edge(e) {
				if !seen[u] {
					seen[u] = true
					want = append(want, u)
				}
			}
		}
		sort.Ints(want)
		got := h.Neighbors(v)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(append([]int(nil), got...), want) {
			t.Fatalf("vertex %d: got %v want %v", v, got, want)
		}
	}
}

// TestContractWorkersEquivalent checks the sharded per-edge phase keeps
// ContractWorkers byte-identical to the sequential Contract: same coarse
// edges in the same order, same weights, same vertex/edge maps, at every
// worker count and for both the stamp-array and map densify paths.
func TestContractWorkersEquivalent(t *testing.T) {
	f := func(seed int64, sparse bool) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 5 + rng.Intn(60)
		h := randomHypergraph(rng, nv, nv*3)
		clusterOf := make([]int, nv)
		k := 1 + rng.Intn(8)
		for v := range clusterOf {
			clusterOf[v] = rng.Intn(k)
			if sparse {
				clusterOf[v] = clusterOf[v]*1000 - 3 // forces the map densify path
			}
		}
		ref, err := h.Contract(clusterOf)
		if err != nil {
			return false
		}
		for _, w := range []int{2, 8} {
			got, err := h.ContractWorkers(clusterOf, w)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(got.VertexMap, ref.VertexMap) ||
				!reflect.DeepEqual(got.EdgeMap, ref.EdgeMap) ||
				!sameEdges(got.Coarse, ref.Coarse) ||
				!reflect.DeepEqual(got.Coarse.edgeWeight, ref.Coarse.edgeWeight) ||
				!reflect.DeepEqual(got.Coarse.vertexWeight, ref.Coarse.vertexWeight) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
