package hypergraph

import (
	"math/rand"
	"testing"
)

// BenchmarkContract measures hypergraph contraction of a 20k-vertex graph.
func BenchmarkContract(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := randomHypergraph(rng, 20000, 40000)
	clusterOf := make([]int, h.NumVertices())
	for v := range clusterOf {
		clusterOf[v] = rng.Intn(400)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Contract(clusterOf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCliqueExpand measures clique expansion.
func BenchmarkCliqueExpand(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	h := randomHypergraph(rng, 10000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.CliqueExpand()
	}
}

// BenchmarkNeighbors measures repeated neighbor queries (the clustering
// gain-update hot path shape).
func BenchmarkNeighbors(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	h := randomHypergraph(rng, 20000, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Neighbors(i % h.NumVertices())
	}
}
