// Package hypergraph provides a weighted hypergraph data structure with the
// coarsening and cluster-quality primitives used by netlist clustering.
//
// Vertices are dense integer IDs in [0, NumVertices). Hyperedges are sets of
// vertices with a positive weight. The structure is append-only; coarsening
// produces a new Hypergraph plus the vertex mapping rather than mutating in
// place, so multilevel algorithms can keep the whole hierarchy alive.
//
// Storage is CSR (compressed sparse row): all edge pins live in one flat
// array sliced by edge offsets, and the vertex→edge incidence is a second
// CSR built lazily on first use. Edge and Incident hand out subslices of
// those arrays, so queries allocate nothing and a million-vertex graph costs
// two large allocations instead of one small one per edge and per vertex.
package hypergraph

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"ppaclust/internal/par"
)

// Hypergraph is a weighted hypergraph over dense vertex IDs.
type Hypergraph struct {
	vertexWeight []float64

	// Edge → pin CSR: edge e's vertices are edgePins[edgeStart[e]:edgeStart[e+1]],
	// strictly sorted. len(edgeStart) == NumEdges()+1 always.
	edgeStart  []int32
	edgePins   []int
	edgeWeight []float64

	// Vertex → edge CSR, built lazily by incidence() and retired by any
	// mutation. The atomic pointer makes concurrent reads safe against each
	// other (parallel cluster rating hits Incident from many goroutines);
	// mutating while readers are active was never supported.
	inc   atomic.Pointer[incidenceCSR]
	incMu sync.Mutex

	// Epoch-stamped scratch for Neighbors: nbStamp[u] == nbEpoch marks u as
	// seen in the current call, so repeated queries allocate nothing.
	nbStamp []int32
	nbEpoch int32
	nbOut   []int
}

type incidenceCSR struct {
	start []int32
	edges []int // ascending edge IDs per vertex, matching AddEdge order
}

// New returns an empty hypergraph with n zero-weight vertices.
func New(n int) *Hypergraph {
	return NewWithCap(n, 0, 0)
}

// NewWithCap returns an empty hypergraph with n zero-weight vertices and
// storage pre-sized for the given edge and pin counts, so bulk construction
// (netlist conversion, contraction) does not grow-and-copy the flat arrays.
func NewWithCap(n, edges, pins int) *Hypergraph {
	return &Hypergraph{
		vertexWeight: make([]float64, n),
		edgeStart:    make([]int32, 1, edges+1),
		edgePins:     make([]int, 0, pins),
		edgeWeight:   make([]float64, 0, edges),
	}
}

// NumVertices returns the number of vertices.
func (h *Hypergraph) NumVertices() int { return len(h.vertexWeight) }

// NumEdges returns the number of hyperedges.
func (h *Hypergraph) NumEdges() int { return len(h.edgeWeight) }

// NumPins returns the total number of pins (vertex-edge incidences).
func (h *Hypergraph) NumPins() int { return len(h.edgePins) }

// AddVertex appends a vertex with weight w and returns its ID.
func (h *Hypergraph) AddVertex(w float64) int {
	h.vertexWeight = append(h.vertexWeight, w)
	h.inc.Store(nil)
	return len(h.vertexWeight) - 1
}

// AddEdge appends a hyperedge over the given vertices and returns its ID.
// Duplicate vertices within one edge are collapsed; the caller's slice is not
// modified. Edges with fewer than two distinct vertices are still stored
// (they occur in real netlists as dangling nets) but carry no connectivity
// information.
func (h *Hypergraph) AddEdge(vertices []int, w float64) int {
	for _, v := range vertices {
		if v < 0 || v >= len(h.vertexWeight) {
			// Same contract as indexing a slice out of range: vertex IDs come
			// from AddVertex, so a bad ID is a caller bug, not input data.
			panic(fmt.Sprintf("hypergraph: vertex %d out of range [0,%d)", v, len(h.vertexWeight))) //ppalint:ignore nopanic bounds assertion with slice-indexing semantics, a bad vertex ID is a caller bug
		}
	}
	// Sort-and-compact in the tail of the flat pin array: no per-edge slice.
	base := len(h.edgePins)
	h.edgePins = append(h.edgePins, vertices...)
	win := h.edgePins[base:]
	slices.Sort(win)
	m := 0
	for i, v := range win {
		if i == 0 || v != win[m-1] {
			win[m] = v
			m++
		}
	}
	h.edgePins = h.edgePins[:base+m]
	id := len(h.edgeWeight)
	h.edgeWeight = append(h.edgeWeight, w)
	if len(h.edgePins) > math.MaxInt32 {
		// Same contract as the vertex-bounds assertion above: the int32 pin
		// CSR caps total pins, and exceeding it silently wraps offsets.
		panic(fmt.Sprintf("hypergraph: %d total pins, beyond the %d the int32 pin CSR can index", len(h.edgePins), math.MaxInt32)) //ppalint:ignore nopanic capacity assertion matching the vertex-bounds idiom; AddEdge's signature has no error return
	}
	h.edgeStart = append(h.edgeStart, int32(len(h.edgePins)))
	h.inc.Store(nil)
	return id
}

// VertexWeight returns the weight of vertex v.
func (h *Hypergraph) VertexWeight(v int) float64 { return h.vertexWeight[v] }

// SetVertexWeight sets the weight of vertex v.
func (h *Hypergraph) SetVertexWeight(v int, w float64) { h.vertexWeight[v] = w }

// EdgeWeight returns the weight of edge e.
func (h *Hypergraph) EdgeWeight(e int) float64 { return h.edgeWeight[e] }

// SetEdgeWeight sets the weight of edge e.
func (h *Hypergraph) SetEdgeWeight(e int, w float64) { h.edgeWeight[e] = w }

// Edge returns the vertices of edge e, strictly sorted. The returned slice is
// a view into the hypergraph's flat pin array and must not be mutated.
func (h *Hypergraph) Edge(e int) []int {
	return h.edgePins[h.edgeStart[e]:h.edgeStart[e+1]]
}

// Incident returns the IDs of edges incident to vertex v, in ascending
// order. The returned slice is a view into the incidence CSR and must not be
// mutated. The CSR is built on first use after a mutation; concurrent
// Incident/Degree/Edge reads are safe with each other.
func (h *Hypergraph) Incident(v int) []int {
	inc := h.incidence()
	return inc.edges[inc.start[v]:inc.start[v+1]]
}

// Degree returns the number of edges incident to vertex v.
func (h *Hypergraph) Degree(v int) int {
	inc := h.incidence()
	return int(inc.start[v+1] - inc.start[v])
}

// incidence returns the vertex→edge CSR, building it once per topology.
// Double-checked locking: readers take one atomic load in steady state.
func (h *Hypergraph) incidence() *incidenceCSR {
	if inc := h.inc.Load(); inc != nil {
		return inc
	}
	h.incMu.Lock()
	defer h.incMu.Unlock()
	if inc := h.inc.Load(); inc != nil {
		return inc
	}
	n := len(h.vertexWeight)
	start := make([]int32, n+1)
	for _, v := range h.edgePins {
		start[v+1]++
	}
	for i := 0; i < n; i++ {
		start[i+1] += start[i]
	}
	edges := make([]int, len(h.edgePins))
	fill := make([]int32, n)
	copy(fill, start[:n])
	for e := range h.edgeWeight {
		for k := h.edgeStart[e]; k < h.edgeStart[e+1]; k++ {
			v := h.edgePins[k]
			edges[fill[v]] = e
			fill[v]++
		}
	}
	inc := &incidenceCSR{start: start, edges: edges}
	h.inc.Store(inc)
	return inc
}

// TotalVertexWeight returns the sum of all vertex weights.
func (h *Hypergraph) TotalVertexWeight() float64 {
	var s float64
	for _, w := range h.vertexWeight {
		s += w
	}
	return s
}

// Neighbors returns the distinct vertices sharing at least one edge with v,
// excluding v itself. The result is sorted. The returned slice is a scratch
// buffer owned by the hypergraph: it is valid only until the next Neighbors
// call, and concurrent calls must not share one Hypergraph.
func (h *Hypergraph) Neighbors(v int) []int {
	inc := h.incidence()
	if len(h.nbStamp) < len(h.vertexWeight) {
		h.nbStamp = make([]int32, len(h.vertexWeight))
		h.nbEpoch = 0
	}
	if h.nbEpoch == math.MaxInt32 {
		for i := range h.nbStamp {
			h.nbStamp[i] = 0
		}
		h.nbEpoch = 0
	}
	h.nbEpoch++
	stamp := h.nbEpoch
	h.nbStamp[v] = stamp
	out := h.nbOut[:0]
	for _, e := range inc.edges[inc.start[v]:inc.start[v+1]] {
		for k := h.edgeStart[e]; k < h.edgeStart[e+1]; k++ {
			u := h.edgePins[k]
			if h.nbStamp[u] != stamp {
				h.nbStamp[u] = stamp
				out = append(out, u)
			}
		}
	}
	sort.Ints(out)
	h.nbOut = out
	return out
}

// Contraction is the result of contracting a hypergraph under a cluster map.
type Contraction struct {
	// Coarse is the contracted hypergraph.
	Coarse *Hypergraph
	// VertexMap maps each fine vertex to its coarse vertex.
	VertexMap []int
	// EdgeMap maps each fine edge to its coarse edge, or -1 if the edge
	// became internal to a single coarse vertex (or degenerate).
	EdgeMap []int
}

// Contract builds the coarse hypergraph induced by clusterOf, which maps each
// vertex to a cluster label (labels need not be dense). Vertex weights are
// summed per cluster. Parallel coarse edges are merged with weights summed;
// edges fully inside one cluster are dropped.
func (h *Hypergraph) Contract(clusterOf []int) (*Contraction, error) {
	return h.ContractWorkers(clusterOf, 1)
}

// ContractWorkers is Contract with an explicit worker count (0 = auto). The
// per-edge work — mapping pins through the cluster map, sorting, deduping,
// hashing — is sharded over workers into per-edge slots of a flat array; the
// first-seen merge then replays those slots serially in edge order, so the
// result is byte-identical to Contract at every worker count (gated by
// TestContractWorkersEquivalent).
func (h *Hypergraph) ContractWorkers(clusterOf []int, workers int) (*Contraction, error) {
	if len(clusterOf) != h.NumVertices() {
		return nil, fmt.Errorf("hypergraph: cluster map has %d entries for %d vertices", len(clusterOf), h.NumVertices())
	}
	workers = par.Workers(workers)
	n := len(clusterOf)

	// Densify labels in first-seen order so results are deterministic.
	// Non-negative labels bounded by a small multiple of n (the common case:
	// merge maps and cluster assignments are vertex-indexed) take a stamp
	// array; anything else falls back to a map with the same first-seen order.
	vmap := make([]int, n)
	nc := 0
	minL, maxL := 0, -1
	for _, c := range clusterOf {
		if maxL < 0 {
			minL, maxL = c, c
			continue
		}
		if c < minL {
			minL = c
		}
		if c > maxL {
			maxL = c
		}
	}
	if n > 0 && minL >= 0 && maxL < 2*n {
		seen := make([]int32, maxL+1)
		for i := range seen {
			seen[i] = -1
		}
		for v, c := range clusterOf {
			if seen[c] < 0 {
				seen[c] = int32(nc)
				nc++
			}
			vmap[v] = int(seen[c])
		}
	} else {
		dense := make(map[int]int)
		for v, c := range clusterOf {
			id, ok := dense[c]
			if !ok {
				id = len(dense)
				dense[c] = id
			}
			vmap[v] = id
		}
		nc = len(dense)
	}

	coarse := NewWithCap(nc, h.NumEdges(), h.NumPins())
	for v, cv := range vmap {
		coarse.vertexWeight[cv] += h.vertexWeight[v]
	}

	// Parallel per-edge phase: map every edge's pins through vmap, sort,
	// dedup, and hash, writing into the edge's own slot of a flat array that
	// mirrors the pin CSR offsets. Each edge is owned by exactly one worker.
	m := h.NumEdges()
	outPins := make([]int, h.NumPins())
	mLen := make([]int32, m)
	keys := make([]uint64, m)
	par.ForEach(workers, m, func(e int) {
		base := h.edgeStart[e]
		pins := h.edgePins[base:h.edgeStart[e+1]]
		out := outPins[base : base+int32(len(pins))] //ppalint:ignore i32trunc pins is a sub-slice between two int32 CSR offsets, its length fits int32
		for i, v := range pins {
			out[i] = vmap[v]
		}
		slices.Sort(out)
		k := 0
		for i, v := range out {
			if i == 0 || v != out[k-1] {
				out[k] = v
				k++
			}
		}
		mLen[e] = int32(k)
		keys[e] = hashInts(out[:k])
	})

	// Serial merge in edge order via the precomputed integer hashes (no
	// per-edge string key). Hash buckets hold candidate coarse-edge ids and
	// every hit is confirmed by exact vertex comparison, so hash collisions
	// cannot merge distinct edges, and the first-seen coarse edge order —
	// hence the result — is deterministic.
	byKey := make(map[uint64][]int)
	emap := make([]int, m)
	for e := 0; e < m; e++ {
		mapped := outPins[h.edgeStart[e] : h.edgeStart[e]+mLen[e]]
		if len(mapped) < 2 {
			emap[e] = -1
			continue
		}
		key := keys[e]
		merged := false
		for _, id := range byKey[key] {
			if equalInts(coarse.Edge(id), mapped) {
				coarse.edgeWeight[id] += h.edgeWeight[e]
				emap[e] = id
				merged = true
				break
			}
		}
		if merged {
			continue
		}
		id := coarse.AddEdge(mapped, h.edgeWeight[e])
		byKey[key] = append(byKey[key], id)
		emap[e] = id
	}
	return &Contraction{Coarse: coarse, VertexMap: vmap, EdgeMap: emap}, nil
}

// hashInts is FNV-1a over the vertex ids, one word at a time, mixed with the
// length. Collisions are tolerated (callers confirm by exact comparison).
func hashInts(vs []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ uint64(len(vs))
	for _, v := range vs {
		h ^= uint64(v)
		h *= prime64
	}
	return h
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// ClusterStats describes one cluster's connectivity, the inputs to the Rent
// exponent criterion (Eq. 1 of the paper).
type ClusterStats struct {
	Size         int     // |c|: number of vertices
	ExternalEdge int     // E(c): edges crossing the cluster boundary
	ExternalPins int     // Ext(c): pins in c on external edges
	InternalPins int     // Int(c): pins in c on internal edges
	Weight       float64 // sum of vertex weights
}

// RentExponent returns the Rent exponent R_c of the cluster per Eq. 1:
//
//	R_c = ln(E(c) / (Int(c)+Ext(c))) / ln(|c|) + 1
//
// Degenerate clusters (size < 2 or no pins) return NaN; callers treat those
// as "no information" and exclude them from weighted averages.
func (s ClusterStats) RentExponent() float64 {
	if s.Size < 2 || s.InternalPins+s.ExternalPins == 0 || s.ExternalEdge == 0 {
		return math.NaN()
	}
	return math.Log(float64(s.ExternalEdge)/float64(s.InternalPins+s.ExternalPins))/math.Log(float64(s.Size)) + 1
}

// ClusterStatsFor computes per-cluster connectivity stats for the clustering
// clusterOf (labels need not be dense). The returned map is keyed by label.
// Labels are densified up front so the per-edge pin counting runs on flat
// stamped arrays instead of a map allocation per edge.
func (h *Hypergraph) ClusterStatsFor(clusterOf []int) map[int]*ClusterStats {
	dense := make(map[int]int)
	labels := make([]int, 0, 64) // dense id -> original label, first-seen order
	cid := make([]int32, len(clusterOf))
	for v, c := range clusterOf {
		id, ok := dense[c]
		if !ok {
			id = len(labels)
			dense[c] = id
			labels = append(labels, c)
		}
		cid[v] = int32(id)
	}
	stats := make([]ClusterStats, len(labels))
	for v := range clusterOf {
		s := &stats[cid[v]]
		s.Size++
		s.Weight += h.vertexWeight[v]
	}
	// Per edge: count pins per touched cluster with an edge-stamped scratch.
	seen := make([]int32, len(labels))
	pins := make([]int32, len(labels))
	for i := range seen {
		seen[i] = -1
	}
	var touched []int32
	for e := range h.edgeWeight {
		touched = touched[:0]
		for k := h.edgeStart[e]; k < h.edgeStart[e+1]; k++ {
			c := cid[h.edgePins[k]]
			if seen[c] != int32(e) {
				seen[c] = int32(e)
				pins[c] = 0
				touched = append(touched, c)
			}
			pins[c]++
		}
		external := len(touched) > 1
		for _, c := range touched {
			s := &stats[c]
			if external {
				s.ExternalEdge++
				s.ExternalPins += int(pins[c])
			} else {
				s.InternalPins += int(pins[c])
			}
		}
	}
	out := make(map[int]*ClusterStats, len(labels))
	for i, lab := range labels {
		out[lab] = &stats[i]
	}
	return out
}

// WeightedAvgRent computes R_avg per Eq. 1: the size-weighted average of the
// per-cluster Rent exponents. Clusters whose exponent is NaN contribute a
// neutral exponent of 1 (a singleton has no internal structure to reward).
func (h *Hypergraph) WeightedAvgRent(clusterOf []int) float64 {
	stats := h.ClusterStatsFor(clusterOf)
	// Accumulate in sorted cluster order: float addition is not associative,
	// and R_avg feeds the clustering objective, so summing in map order would
	// make the result vary run to run.
	ids := make([]int, 0, len(stats))
	for c := range stats {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	var num float64
	total := 0
	for _, c := range ids {
		s := stats[c]
		r := s.RentExponent()
		if math.IsNaN(r) {
			r = 1
		}
		num += r * float64(s.Size)
		total += s.Size
	}
	if total == 0 {
		return math.NaN()
	}
	return num / float64(total)
}

// CutSize returns the total weight of edges spanning more than one cluster.
func (h *Hypergraph) CutSize(clusterOf []int) float64 {
	var cut float64
	for e := range h.edgeWeight {
		verts := h.Edge(e)
		if len(verts) < 2 {
			continue
		}
		first := clusterOf[verts[0]]
		for _, v := range verts[1:] {
			if clusterOf[v] != first {
				cut += h.edgeWeight[e]
				break
			}
		}
	}
	return cut
}

// Validate checks internal consistency and returns an error describing the
// first violation found.
func (h *Hypergraph) Validate() error {
	if len(h.edgeStart) != h.NumEdges()+1 || h.edgeStart[0] != 0 {
		return fmt.Errorf("edge offset array has %d entries for %d edges", len(h.edgeStart), h.NumEdges())
	}
	if int(h.edgeStart[h.NumEdges()]) != len(h.edgePins) {
		return fmt.Errorf("edge offsets end at %d but pin array has %d entries", h.edgeStart[h.NumEdges()], len(h.edgePins))
	}
	for e := range h.edgeWeight {
		if h.edgeStart[e] > h.edgeStart[e+1] {
			return fmt.Errorf("edge %d has negative extent", e)
		}
		verts := h.Edge(e)
		for i, v := range verts {
			if v < 0 || v >= h.NumVertices() {
				return fmt.Errorf("edge %d references vertex %d out of range", e, v)
			}
			if i > 0 && verts[i-1] >= v {
				return fmt.Errorf("edge %d vertices not strictly sorted", e)
			}
		}
	}
	inc := h.incidence()
	for v := 0; v < h.NumVertices(); v++ {
		for _, e := range inc.edges[inc.start[v]:inc.start[v+1]] {
			if e < 0 || e >= h.NumEdges() {
				return fmt.Errorf("vertex %d lists edge %d out of range", v, e)
			}
			found := false
			for _, u := range h.Edge(e) {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("vertex %d lists edge %d but edge does not contain it", v, e)
			}
		}
	}
	return nil
}

// CliqueExpand converts the hypergraph to a weighted undirected graph using
// standard clique expansion: each hyperedge e contributes weight
// w_e/(|e|-1) to every vertex pair it connects. The result is returned as an
// adjacency list with accumulated weights; used for community detection and
// for cluster-graph features.
func (h *Hypergraph) CliqueExpand() *Graph {
	g := NewGraph(h.NumVertices())
	for e := range h.edgeWeight {
		verts := h.Edge(e)
		k := len(verts)
		if k < 2 {
			continue
		}
		w := h.edgeWeight[e] / float64(k-1)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.AddEdge(verts[i], verts[j], w)
			}
		}
	}
	g.Finish()
	return g
}
