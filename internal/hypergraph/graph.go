package hypergraph

import "sort"

// Graph is a weighted undirected graph with dense vertex IDs, produced by
// clique expansion of a hypergraph and consumed by community detection and
// graph-feature extraction. Parallel edges added before Finish are merged.
type Graph struct {
	n        int
	adj      [][]Half
	selfLoop []float64
	totalW   float64
	finished bool
}

// Half is one directed half of an undirected edge.
type Half struct {
	To     int
	Weight float64
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{
		n:        n,
		adj:      make([][]Half, n),
		selfLoop: make([]float64, n),
	}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// AddEdge accumulates an undirected edge (u,v) with weight w. A self loop
// (u == v) is stored separately; community detection counts it once.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		g.selfLoop[u] += w
		g.totalW += w
		return
	}
	g.adj[u] = append(g.adj[u], Half{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], Half{To: u, Weight: w})
	g.totalW += w
}

// Finish merges parallel edges. It must be called once after all AddEdge
// calls and before any traversal.
func (g *Graph) Finish() {
	if g.finished {
		return
	}
	for v := range g.adj {
		hs := g.adj[v]
		if len(hs) < 2 {
			continue
		}
		sort.Slice(hs, func(i, j int) bool { return hs[i].To < hs[j].To })
		out := hs[:0]
		for _, h := range hs {
			if n := len(out); n > 0 && out[n-1].To == h.To {
				out[n-1].Weight += h.Weight
			} else {
				out = append(out, h)
			}
		}
		g.adj[v] = out
	}
	g.finished = true
}

// Adj returns the merged adjacency of v. Finish must have been called.
func (g *Graph) Adj(v int) []Half { return g.adj[v] }

// SelfLoop returns the accumulated self-loop weight at v.
func (g *Graph) SelfLoop(v int) float64 { return g.selfLoop[v] }

// TotalWeight returns the sum of all undirected edge weights (self loops
// counted once).
func (g *Graph) TotalWeight() float64 { return g.totalW }

// WeightedDegree returns the total incident edge weight of v, counting self
// loops twice (the convention used by modularity).
func (g *Graph) WeightedDegree(v int) float64 {
	d := 2 * g.selfLoop[v]
	for _, h := range g.adj[v] {
		d += h.Weight
	}
	return d
}

// Degree returns the number of distinct neighbors of v (self excluded).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }
