package community

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ppaclust/internal/hypergraph"
)

// cliques builds k disjoint cliques of size s with sparse bridges between
// consecutive cliques.
func cliques(k, s int, bridgeW float64) *hypergraph.Graph {
	g := hypergraph.NewGraph(k * s)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				g.AddEdge(base+i, base+j, 1)
			}
		}
		if c > 0 {
			g.AddEdge(base-1, base, bridgeW)
		}
	}
	g.Finish()
	return g
}

func sameGroup(assign []int, a, b int) bool { return assign[a] == assign[b] }

func TestLouvainFindsCliques(t *testing.T) {
	g := cliques(4, 6, 0.5)
	assign := Louvain(g, Options{Seed: 1})
	if n := NumCommunities(assign); n != 4 {
		t.Fatalf("communities=%d want 4", n)
	}
	for c := 0; c < 4; c++ {
		base := c * 6
		for i := 1; i < 6; i++ {
			if !sameGroup(assign, base, base+i) {
				t.Fatalf("clique %d split", c)
			}
		}
	}
	if !sameGroup(assign, 0, 1) || sameGroup(assign, 0, 6) {
		t.Fatal("cliques merged across bridge")
	}
}

func TestLeidenFindsCliques(t *testing.T) {
	g := cliques(5, 5, 0.25)
	assign := Leiden(g, Options{Seed: 7})
	if n := NumCommunities(assign); n != 5 {
		t.Fatalf("communities=%d want 5", n)
	}
}

func TestModularityHandValue(t *testing.T) {
	// Two disjoint edges: perfect 2-community partition.
	g := hypergraph.NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.Finish()
	q := Modularity(g, []int{0, 0, 1, 1}, 1)
	// Q = sum over c of [in/2m - (tot/2m)^2] = 2*(1/2 - (2/4)^2) wait:
	// m=2, per community: in=2 (w counted both ends), tot=2.
	// Q_c = 2/4 - (2/4)^2 = 0.5 - 0.25 = 0.25; total 0.5.
	if math.Abs(q-0.5) > 1e-12 {
		t.Fatalf("Q=%v want 0.5", q)
	}
	// Everything in one community: Q = 1 - 1 = ... in=4? m=2; in(total)=4/4=1; tot=4 -> (4/4)^2=1 -> 0.
	q1 := Modularity(g, []int{0, 0, 0, 0}, 1)
	if math.Abs(q1-0) > 1e-12 {
		t.Fatalf("Q(single)=%v want 0", q1)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := hypergraph.NewGraph(3)
	g.Finish()
	if Modularity(g, []int{0, 1, 2}, 1) != 0 {
		t.Fatal("empty graph modularity should be 0")
	}
}

func TestLouvainImprovesModularity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := hypergraph.NewGraph(60)
	// Random graph with planted partition: 3 groups of 20.
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			same := i/20 == j/20
			p := 0.05
			if same {
				p = 0.4
			}
			if rng.Float64() < p {
				g.AddEdge(i, j, 1)
			}
		}
	}
	g.Finish()
	assign := Louvain(g, Options{Seed: 3})
	singletons := make([]int, 60)
	for i := range singletons {
		singletons[i] = i
	}
	if Modularity(g, assign, 1) <= Modularity(g, singletons, 1) {
		t.Fatal("Louvain should beat singleton partition")
	}
	if Modularity(g, assign, 1) < 0.2 {
		t.Fatalf("planted partition modularity too low: %v", Modularity(g, assign, 1))
	}
}

func TestLeidenAtLeastAsGoodAsLouvainOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := hypergraph.NewGraph(80)
	for i := 0; i < 80; i++ {
		for j := i + 1; j < 80; j++ {
			same := i/16 == j/16
			p := 0.03
			if same {
				p = 0.35
			}
			if rng.Float64() < p {
				g.AddEdge(i, j, 1)
			}
		}
	}
	g.Finish()
	ql := Modularity(g, Louvain(g, Options{Seed: 5}), 1)
	qn := Modularity(g, Leiden(g, Options{Seed: 5}), 1)
	if qn < ql-0.05 {
		t.Fatalf("Leiden %v much worse than Louvain %v", qn, ql)
	}
}

func TestResolutionControlsGranularity(t *testing.T) {
	g := cliques(4, 6, 1.5)
	lo := NumCommunities(Louvain(g, Options{Seed: 1, Resolution: 0.1}))
	hi := NumCommunities(Louvain(g, Options{Seed: 1, Resolution: 4}))
	if lo > hi {
		t.Fatalf("low resolution should give fewer communities: %d > %d", lo, hi)
	}
}

func TestDeterminism(t *testing.T) {
	g := cliques(3, 7, 0.5)
	a := Louvain(g, Options{Seed: 11})
	b := Louvain(g, Options{Seed: 11})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Louvain not deterministic for fixed seed")
		}
	}
	c := Leiden(g, Options{Seed: 11})
	d := Leiden(g, Options{Seed: 11})
	for i := range c {
		if c[i] != d[i] {
			t.Fatal("Leiden not deterministic for fixed seed")
		}
	}
}

func TestPropertyModularityBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		g := hypergraph.NewGraph(n)
		for e := 0; e < n*2; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 0.5+rng.Float64())
		}
		g.Finish()
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(4)
		}
		q := Modularity(g, assign, 1)
		return q >= -1.0-1e-9 && q <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLouvainNeverWorseThanSingletons(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		g := hypergraph.NewGraph(n)
		for e := 0; e < n*3; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		g.Finish()
		if g.TotalWeight() == 0 {
			return true
		}
		assign := Louvain(g, Options{Seed: seed})
		singles := make([]int, n)
		for i := range singles {
			singles[i] = i
		}
		return Modularity(g, assign, 1) >= Modularity(g, singles, 1)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLeidenDenseLabels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(25)
		g := hypergraph.NewGraph(n)
		for e := 0; e < n*2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		g.Finish()
		assign := Leiden(g, Options{Seed: seed})
		if len(assign) != n {
			return false
		}
		k := NumCommunities(assign)
		seen := make([]bool, k)
		for _, c := range assign {
			if c < 0 || c >= k {
				return false
			}
			seen[c] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
