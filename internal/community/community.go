// Package community implements modularity-based community detection:
// Louvain (Blondel et al., 2008) and Leiden (Traag et al., 2019). These are
// the clustering baselines the paper compares against — blob placement [9]
// uses Louvain, and Table 5 compares against Leiden — and they operate on the
// clique expansion of the netlist hypergraph.
package community

import (
	"math/rand"

	"ppaclust/internal/hypergraph"
)

// Options configures community detection.
type Options struct {
	Resolution float64 // modularity resolution γ (default 1)
	Seed       int64   // RNG seed for vertex visit order
	MaxLevels  int     // max aggregation levels (default 10)
	MaxPasses  int     // max local-moving passes per level (default 10)
}

func (o Options) withDefaults() Options {
	if o.Resolution <= 0 {
		o.Resolution = 1
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 10
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 10
	}
	return o
}

// Modularity returns the weighted modularity of the assignment at the given
// resolution. Self-loops count via the standard A_ii = 2*loop convention.
func Modularity(g *hypergraph.Graph, assign []int, resolution float64) float64 {
	m := g.TotalWeight()
	if m <= 0 {
		return 0
	}
	intra := map[int]float64{}
	tot := map[int]float64{}
	for v := 0; v < g.NumVertices(); v++ {
		c := assign[v]
		tot[c] += g.WeightedDegree(v)
		intra[c] += 2 * g.SelfLoop(v)
		for _, h := range g.Adj(v) {
			if assign[h.To] == c {
				intra[c] += h.Weight // counted from both ends -> 2*w total
			}
		}
	}
	var q float64
	for c, in := range intra {
		q += in/(2*m) - resolution*(tot[c]/(2*m))*(tot[c]/(2*m))
	}
	for c, t := range tot {
		if _, ok := intra[c]; !ok {
			q -= resolution * (t / (2 * m)) * (t / (2 * m))
		}
	}
	return q
}

// state holds the mutable local-moving bookkeeping for one level.
type state struct {
	g      *hypergraph.Graph
	assign []int
	tot    []float64 // per community: sum of weighted degrees
	m      float64
	gamma  float64
}

func newState(g *hypergraph.Graph, gamma float64) *state {
	n := g.NumVertices()
	s := &state{
		g:      g,
		assign: make([]int, n),
		tot:    make([]float64, n),
		m:      g.TotalWeight(),
		gamma:  gamma,
	}
	for v := 0; v < n; v++ {
		s.assign[v] = v
		s.tot[v] = g.WeightedDegree(v)
	}
	return s
}

// localMove runs one pass of Louvain local moving; returns #moves.
func (s *state) localMove(order []int) int {
	moves := 0
	links := map[int]float64{}
	for _, v := range order {
		cv := s.assign[v]
		kv := s.g.WeightedDegree(v)
		// Weights to neighboring communities.
		for k := range links {
			delete(links, k)
		}
		for _, h := range s.g.Adj(v) {
			links[s.assign[h.To]] += h.Weight
		}
		// Remove v from its community.
		s.tot[cv] -= kv
		bestC, bestGain := cv, links[cv]-s.gamma*kv*s.tot[cv]/(2*s.m)
		for c, w := range links {
			if c == cv {
				continue
			}
			gain := w - s.gamma*kv*s.tot[c]/(2*s.m)
			if gain > bestGain+1e-15 || (gain > bestGain-1e-15 && c < bestC) {
				bestC, bestGain = c, gain
			}
		}
		s.tot[bestC] += kv
		if bestC != cv {
			s.assign[v] = bestC
			moves++
		}
	}
	return moves
}

func shuffled(n int, rng *rand.Rand) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// densify relabels communities to dense 0..k-1 in first-seen order.
func densify(assign []int) ([]int, int) {
	dense := map[int]int{}
	out := make([]int, len(assign))
	for i, c := range assign {
		id, ok := dense[c]
		if !ok {
			id = len(dense)
			dense[c] = id
		}
		out[i] = id
	}
	return out, len(dense)
}

// aggregate builds the community graph of g under assign (dense labels).
func aggregate(g *hypergraph.Graph, assign []int, k int) *hypergraph.Graph {
	ag := hypergraph.NewGraph(k)
	for v := 0; v < g.NumVertices(); v++ {
		cv := assign[v]
		if l := g.SelfLoop(v); l > 0 {
			ag.AddEdge(cv, cv, l)
		}
		for _, h := range g.Adj(v) {
			if h.To > v {
				ag.AddEdge(cv, assign[h.To], h.Weight)
			}
		}
	}
	ag.Finish()
	return ag
}

// Louvain runs the Louvain method and returns a dense community assignment.
func Louvain(g *hypergraph.Graph, opt Options) []int {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	// assignment of original vertices, starts as identity through levels
	final := make([]int, g.NumVertices())
	for i := range final {
		final[i] = i
	}
	cur := g
	for level := 0; level < opt.MaxLevels; level++ {
		s := newState(cur, opt.Resolution)
		totalMoves := 0
		for pass := 0; pass < opt.MaxPasses; pass++ {
			moves := s.localMove(shuffled(cur.NumVertices(), rng))
			totalMoves += moves
			if moves == 0 {
				break
			}
		}
		dense, k := densify(s.assign)
		if totalMoves == 0 || k == cur.NumVertices() {
			break
		}
		for i := range final {
			final[i] = dense[final[i]]
		}
		if k <= 1 {
			break
		}
		cur = aggregate(cur, dense, k)
	}
	out, _ := densify(final)
	return out
}

// Leiden runs the Leiden method: local moving, refinement within
// communities, then aggregation on the refined partition with the community
// partition as the initial assignment of the aggregate graph. It guarantees
// that returned communities are internally connected.
func Leiden(g *hypergraph.Graph, opt Options) []int {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	final := make([]int, g.NumVertices())
	for i := range final {
		final[i] = i
	}
	cur := g
	// comm carries the community assignment of cur's vertices between levels.
	for level := 0; level < opt.MaxLevels; level++ {
		s := newState(cur, opt.Resolution)
		totalMoves := 0
		for pass := 0; pass < opt.MaxPasses; pass++ {
			moves := s.localMove(shuffled(cur.NumVertices(), rng))
			totalMoves += moves
			if moves == 0 {
				break
			}
		}
		comm, k := densify(s.assign)
		if totalMoves == 0 || k == cur.NumVertices() {
			break
		}
		// Refinement: split each community into connected sub-communities.
		refined := refine(cur, comm, opt.Resolution, rng)
		rdense, rk := densify(refined)
		for i := range final {
			final[i] = rdense[final[i]]
		}
		if rk <= 1 || rk == cur.NumVertices() {
			break
		}
		cur = aggregate(cur, rdense, rk)
	}
	out, _ := densify(final)
	return out
}

// refine re-partitions each community into well-connected sub-communities:
// starting from singletons, each vertex merges into the best positive-gain
// sub-community within its own community. This is the determinism-friendly
// variant of Leiden's randomized merge step.
func refine(g *hypergraph.Graph, comm []int, gamma float64, rng *rand.Rand) []int {
	n := g.NumVertices()
	sub := make([]int, n)
	for i := range sub {
		sub[i] = i
	}
	subTot := make([]float64, n)
	for v := 0; v < n; v++ {
		subTot[v] = g.WeightedDegree(v)
	}
	m := g.TotalWeight()
	order := shuffled(n, rng)
	links := map[int]float64{}
	for _, v := range order {
		if sub[v] != v || subTot[v] != g.WeightedDegree(v) {
			// Only singleton sub-communities move (Leiden's rule keeps
			// refinement cheap and guarantees connectivity).
			continue
		}
		for k := range links {
			delete(links, k)
		}
		for _, h := range g.Adj(v) {
			if comm[h.To] == comm[v] {
				links[sub[h.To]] += h.Weight
			}
		}
		kv := g.WeightedDegree(v)
		bestC, bestGain := sub[v], 0.0
		for c, w := range links {
			if c == sub[v] {
				continue
			}
			gain := w - gamma*kv*subTot[c]/(2*m)
			if gain > bestGain+1e-15 || (gain > bestGain-1e-15 && gain > 0 && c < bestC) {
				bestC, bestGain = c, gain
			}
		}
		if bestC != sub[v] {
			subTot[bestC] += kv
			subTot[sub[v]] -= kv
			sub[v] = bestC
		}
	}
	return sub
}

// NumCommunities returns the number of distinct labels in a dense assignment.
func NumCommunities(assign []int) int {
	max := -1
	for _, c := range assign {
		if c > max {
			max = c
		}
	}
	return max + 1
}
