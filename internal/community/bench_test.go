package community

import (
	"math/rand"
	"testing"

	"ppaclust/internal/hypergraph"
)

func plantedGraph(n, groups int, seed int64) *hypergraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := hypergraph.NewGraph(n)
	per := n / groups
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := 0.002
			if i/per == j/per {
				p = 0.08
			}
			if rng.Float64() < p {
				g.AddEdge(i, j, 1)
			}
		}
	}
	g.Finish()
	return g
}

// BenchmarkLouvain measures Louvain on a 2000-vertex planted partition.
func BenchmarkLouvain(b *testing.B) {
	g := plantedGraph(2000, 20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Louvain(g, Options{Seed: int64(i)})
	}
}

// BenchmarkLeiden measures Leiden on the same graph.
func BenchmarkLeiden(b *testing.B) {
	g := plantedGraph(2000, 20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Leiden(g, Options{Seed: int64(i)})
	}
}
