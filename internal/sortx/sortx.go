// Package sortx provides the stable LSD radix-sort infrastructure shared by
// the scale-critical packages (place's bisection orderings, route's huge-net
// chain decomposition, cts's sink clustering). Sorting indices rather than
// records keeps the payloads in place; stability over an ascending-index fill
// gives every sort the strict (key, index) total order the deterministic
// divide-and-conquer passes depend on. Purely sequential and comparator-free:
// O(n) per 16-bit digit pass, identical output on every run.
package sortx

import "math"

// Digit width: 16-bit digits, four LSD passes over uint64 keys.
const (
	digitBits = 16
	buckets   = 1 << digitBits
)

// Bits maps a float64 to a uint64 whose unsigned order matches the float
// order: negatives have all bits flipped, positives get the sign bit set.
// Negative zero maps to the positive-zero key so the two compare equal,
// exactly as float comparison treats them. Callers sort finite geometry, so
// NaN handling is not needed.
func Bits(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 != 0 {
		if b == 1<<63 {
			return 1 << 63
		}
		return ^b
	}
	return b | 1<<63
}

// Sorter owns the reusable key/value/histogram scratch of the radix sort.
// The zero value is ready to use; buffers grow on demand and are retained
// across calls. A Sorter is not safe for concurrent use.
type Sorter struct {
	key, keyTmp []uint64
	val         []int32
	hist        []int32
}

func (s *Sorter) grow(n int) {
	if cap(s.key) < n {
		s.key = make([]uint64, n)
		s.keyTmp = make([]uint64, n)
		s.val = make([]int32, n)
	}
	if s.hist == nil {
		s.hist = make([]int32, buckets)
	}
}

// IndexByFloat64 fills ord with 0..len(ord)-1 and stable-sorts it ascending
// by coord[i] (ties resolve by index). len(coord) must be >= len(ord).
func (s *Sorter) IndexByFloat64(ord []int32, coord []float64) {
	n := len(ord)
	s.grow(n)
	for i := 0; i < n; i++ {
		s.key[i] = Bits(coord[i])
	}
	s.run(ord, n)
}

// IndexByKeys fills ord with 0..len(ord)-1 and stable-sorts it ascending by
// keys[i] (ties resolve by index). len(keys) must be >= len(ord).
func (s *Sorter) IndexByKeys(ord []int32, keys []uint64) {
	n := len(ord)
	s.grow(n)
	copy(s.key[:n], keys[:n])
	s.run(ord, n)
}

// run executes the LSD passes over s.key, leaving the sorted index
// permutation in ord. Passes whose 16-bit digit is constant across all keys
// are skipped after counting — common for geometry confined to one core
// region, where high exponent bits barely vary.
func (s *Sorter) run(ord []int32, n int) {
	if n == 0 {
		return
	}
	srcK, dstK := s.key[:n], s.keyTmp[:n]
	srcV, dstV := ord, s.val[:n]
	for i := 0; i < n; i++ {
		srcV[i] = int32(i)
	}
	hist := s.hist
	for pass := 0; pass < 64/digitBits; pass++ {
		shift := uint(pass * digitBits)
		clear(hist)
		for i := 0; i < n; i++ {
			hist[(srcK[i]>>shift)&(buckets-1)]++
		}
		if hist[(srcK[0]>>shift)&(buckets-1)] == int32(n) {
			continue
		}
		sum := int32(0)
		for d := 0; d < buckets; d++ {
			c := hist[d]
			hist[d] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			d := (srcK[i] >> shift) & (buckets - 1)
			j := hist[d]
			hist[d] = j + 1
			dstK[j] = srcK[i]
			dstV[j] = srcV[i]
		}
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if &srcV[0] != &ord[0] {
		copy(ord, srcV)
	}
}
