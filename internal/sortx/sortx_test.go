package sortx

import (
	"math/rand"
	"slices"
	"testing"
)

// TestIndexByFloat64MatchesComparator checks the stable radix sort against a
// comparator sort, including negative coordinates, duplicates (index
// tie-break), and signed zeros.
func TestIndexByFloat64MatchesComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Sorter
	for _, n := range []int{0, 1, 4, 5, 17, 100, 1000} {
		coord := make([]float64, n)
		for i := range coord {
			coord[i] = float64(rng.Intn(20)) * 1.5
			if rng.Intn(4) == 0 {
				coord[i] = -coord[i] // exercises -0.0 == +0.0 ties too
			}
		}
		got := make([]int32, n)
		s.IndexByFloat64(got, coord)
		want := make([]int32, n)
		for i := range want {
			want[i] = int32(i)
		}
		slices.SortFunc(want, func(a, b int32) int {
			switch {
			case coord[a] < coord[b]:
				return -1
			case coord[a] > coord[b]:
				return 1
			}
			return int(a) - int(b)
		})
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d got %v want %v", n, got, want)
		}
	}
}

// TestIndexByKeysStable checks integer-key sorting with explicit duplicate
// runs: equal keys must keep ascending index order.
func TestIndexByKeysStable(t *testing.T) {
	keys := []uint64{5, 2, 5, 2, 1, 5, 1 << 40, 0, 1 << 40}
	ord := make([]int32, len(keys))
	var s Sorter
	s.IndexByKeys(ord, keys)
	want := []int32{7, 4, 1, 3, 0, 2, 5, 6, 8}
	if !slices.Equal(ord, want) {
		t.Fatalf("got %v want %v", ord, want)
	}
}

// TestBitsOrder checks the float64 -> uint64 monotone key map.
func TestBitsOrder(t *testing.T) {
	vals := []float64{-1e30, -2.5, -1, -0.0, 0.0, 1e-300, 1, 2.5, 1e30}
	for i := 1; i < len(vals); i++ {
		a, b := Bits(vals[i-1]), Bits(vals[i])
		if vals[i-1] == vals[i] {
			if a != b {
				t.Fatalf("equal floats %v %v map to different keys", vals[i-1], vals[i])
			}
		} else if a >= b {
			t.Fatalf("order violated at %v < %v: %x >= %x", vals[i-1], vals[i], a, b)
		}
	}
}

func BenchmarkIndexByFloat64_100k(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 100_000
	coord := make([]float64, n)
	for i := range coord {
		coord[i] = rng.Float64() * 1e4
	}
	ord := make([]int32, n)
	var s Sorter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.IndexByFloat64(ord, coord)
	}
}
