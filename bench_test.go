// Package ppaclust's root benchmark harness regenerates every table and
// figure of the paper's evaluation as a testing.B benchmark. Each benchmark
// runs the corresponding experiment end to end and reports headline numbers
// as custom metrics, so `go test -bench=. -benchmem` reproduces the paper's
// evaluation section in one command.
//
// The benchmarks default to the fast suite (shrunken designs) so the whole
// set completes in minutes; set PPACLUST_FULL=1 to run the full-size
// benchmark designs as `cmd/ppabench` does.
package ppaclust

import (
	"os"
	"runtime"
	"testing"

	"ppaclust/internal/experiments"
)

func newSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	fast := os.Getenv("PPACLUST_FULL") == ""
	return experiments.NewSuite(fast, 1, runtime.GOMAXPROCS(0))
}

// BenchmarkTable1Stats regenerates Table 1 (benchmark statistics).
func BenchmarkTable1Stats(b *testing.B) {
	s := newSuite(b)
	var insts int
	for i := 0; i < b.N; i++ {
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		insts = 0
		for _, r := range rows {
			insts += r.Insts
		}
	}
	b.ReportMetric(float64(insts), "total-insts")
}

// BenchmarkTable2PostPlace regenerates Table 2 (post-place HPWL and CPU vs
// blob placement [9] and the default flow, OpenROAD mode).
func BenchmarkTable2PostPlace(b *testing.B) {
	s := newSuite(b)
	var avgCPU, avgHPWL float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		avgCPU, avgHPWL = 0, 0
		for _, r := range rows {
			avgCPU += r.OursCPU
			avgHPWL += r.OursHPWL
		}
		avgCPU /= float64(len(rows))
		avgHPWL /= float64(len(rows))
	}
	b.ReportMetric(avgCPU, "ours-cpu-ratio")
	b.ReportMetric(avgHPWL, "ours-hpwl-ratio")
}

// BenchmarkTable3PostRouteOR regenerates Table 3 (post-route PPA, OpenROAD).
func BenchmarkTable3PostRouteOR(b *testing.B) {
	s := newSuite(b)
	var tnsGain float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		tnsGain = tnsImprovement(rows)
	}
	b.ReportMetric(tnsGain, "tns-improvement-ns")
}

// BenchmarkTable4PostRouteInv regenerates Table 4 (post-route PPA, Innovus
// mode with region constraints).
func BenchmarkTable4PostRouteInv(b *testing.B) {
	s := newSuite(b)
	var tnsGain float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		tnsGain = tnsImprovement(rows)
	}
	b.ReportMetric(tnsGain, "tns-improvement-ns")
}

// BenchmarkTable5ClusterAblation regenerates Table 5 (Leiden vs MFC vs
// PPA-aware clustering inside the same flow).
func BenchmarkTable5ClusterAblation(b *testing.B) {
	s := newSuite(b)
	var oursTNS, mfcTNS float64
	for i := 0; i < b.N; i++ {
		oursTNS, mfcTNS = 0, 0
		rows, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Flow {
			case "Ours":
				oursTNS += r.TNSns
			case "MFC":
				mfcTNS += r.TNSns
			}
		}
	}
	b.ReportMetric(oursTNS-mfcTNS, "ours-minus-mfc-tns-ns")
}

// BenchmarkTable6ShapeAblation regenerates Table 6 (Random vs Uniform vs
// ML-accelerated V-P&R cluster shapes, Innovus mode).
func BenchmarkTable6ShapeAblation(b *testing.B) {
	s := newSuite(b)
	var mlTNS, uniTNS float64
	for i := 0; i < b.N; i++ {
		mlTNS, uniTNS = 0, 0
		rows, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Flow {
			case "V-P&R_ML":
				mlTNS += r.TNSns
			case "Uniform":
				uniTNS += r.TNSns
			}
		}
	}
	b.ReportMetric(mlTNS-uniTNS, "ml-minus-uniform-tns-ns")
}

// BenchmarkGNNModelQuality regenerates the Section 4.4 model-quality study:
// V-P&R dataset generation, training, MAE/R2 on the three splits.
func BenchmarkGNNModelQuality(b *testing.B) {
	var mae, r2 float64
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(os.Getenv("PPACLUST_FULL") == "", int64(1+i), runtime.GOMAXPROCS(0))
		rep, err := s.GNNMetrics()
		if err != nil {
			b.Fatal(err)
		}
		mae, r2 = rep.Test.MAE, rep.Test.R2
	}
	b.ReportMetric(mae, "test-mae")
	b.ReportMetric(r2, "test-r2")
}

// BenchmarkFigure5Hyperparams regenerates the Figure 5 sweep (alpha, beta,
// gamma, mu multipliers vs normalized post-place HPWL).
func BenchmarkFigure5Hyperparams(b *testing.B) {
	s := newSuite(b)
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		pts, err := s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Score > worst {
				worst = p.Score
			}
		}
	}
	b.ReportMetric(worst, "worst-norm-hpwl")
}

func tnsImprovement(rows []experiments.PPARow) float64 {
	var def, ours float64
	for _, r := range rows {
		switch r.Flow {
		case "Default":
			def += r.TNSns
		case "Ours":
			ours += r.TNSns
		}
	}
	return ours - def // positive = ours is better (less negative TNS)
}

// BenchmarkAblationClusterTerms runs the extension ablation: each arm
// disables one ingredient of the PPA-aware rating (hierarchy constraints,
// timing costs, switching costs).
func BenchmarkAblationClusterTerms(b *testing.B) {
	s := newSuite(b)
	var fullTNS float64
	for i := 0; i < b.N; i++ {
		fullTNS = 0
		rows, err := s.AblationClusterTerms()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Arm == "full" {
				fullTNS += r.TNSns
			}
		}
	}
	b.ReportMetric(fullTNS, "full-arm-tns-ns")
}
