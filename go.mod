module ppaclust

go 1.22
