// Hierarchy clustering walk-through: write a benchmark to gate-level
// Verilog, parse it back (hierarchy survives via escaped identifiers), run
// Algorithm 2's dendrogram levelization with Rent-exponent level selection,
// and show how the chosen level compares to the alternatives.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ppaclust/internal/designs"
	"ppaclust/internal/hier"
	"ppaclust/internal/verilog"
)

func main() {
	spec, _ := designs.Named("ariane") // deep hierarchy (depth 3)
	b := designs.Generate(spec)

	// Round-trip through the Verilog subset, as the real flow would ingest
	// a netlist file rather than an in-memory design.
	var buf bytes.Buffer
	if err := verilog.Write(&buf, b.Design); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emitted %d bytes of gate-level Verilog\n", buf.Len())
	d, err := verilog.Parse(&buf, b.Design.Lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed back: %d instances, %d nets\n\n", len(d.Insts), len(d.Nets))

	// Algorithm 2: dendrogram levelization + Rent-criterion selection.
	h := d.ToHypergraph().H
	res, ok := hier.Cluster(d, h)
	if !ok {
		log.Fatal("design has no logical hierarchy")
	}
	fmt.Println("level  R_avg     (selected level minimizes the weighted Rent exponent)")
	for _, sc := range res.Scores {
		mark := " "
		if sc.Level == res.Level {
			mark = "*"
		}
		fmt.Printf("%s %3d   %.4f\n", mark, sc.Level, sc.RAvg)
	}
	fmt.Printf("\nselected level %d: %d clusters, R_avg %.4f\n", res.Level, res.Clusters, res.RAvg)
	sizes := hier.GroupSizes(res.Assign)
	show := sizes
	if len(show) > 8 {
		show = show[:8]
	}
	fmt.Printf("largest cluster sizes: %v\n", show)
	fmt.Println("\nthese clusters become the grouping constraints of the PPA-aware")
	fmt.Println("multilevel FC clustering (Algorithm 1 line 7).")
}
