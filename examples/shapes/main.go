// Cluster shaping walk-through: induce a cluster's sub-netlist, sweep the
// paper's 20 (aspect ratio, utilization) candidates with exact virtualized
// P&R, then train a small GNN on the sweep labels and show the model
// predicting the winner — the Figure 3 pipeline end to end.
package main

import (
	"fmt"
	"log"
	"time"

	"ppaclust/internal/cluster"
	"ppaclust/internal/designs"
	"ppaclust/internal/features"
	"ppaclust/internal/gnn"
	"ppaclust/internal/vpr"
)

func main() {
	spec, _ := designs.Named("aes")
	b := designs.Generate(spec)
	view := b.Design.ToHypergraph()
	res := cluster.MultilevelFC(view.H, cluster.Options{Seed: 1, TargetClusters: 12})

	// Collect the members of each sufficiently large cluster.
	members := make([][]int, res.NumClusters)
	for v, c := range res.Assign {
		members[c] = append(members[c], v)
	}
	var big [][]int
	for _, m := range members {
		if len(m) >= 60 {
			big = append(big, m)
		}
	}
	if len(big) == 0 {
		log.Fatal("no large clusters; lower the threshold")
	}
	fmt.Printf("%d clusters above the V-P&R gate\n\n", len(big))

	// Exact V-P&R on the first cluster: the 5x4 sweep of Section 3.2.
	sub, err := vpr.InduceSubNetlist(b.Design, big[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster sub-netlist: %d cells, %d nets, %d boundary ports\n",
		len(sub.Insts), len(sub.Nets), len(sub.Ports))
	t0 := time.Now()
	best, evals := vpr.BestShape(sub, vpr.Runner{Opt: vpr.Options{Seed: 1}})
	exactTime := time.Since(t0)
	fmt.Printf("\n%6s %6s %10s %10s %10s\n", "AR", "util", "costHPWL", "costCong", "total")
	for _, ev := range evals {
		mark := " "
		if ev.Shape == best {
			mark = "*"
		}
		fmt.Printf("%s%5.2f %6.2f %10.4f %10.4f %10.4f\n",
			mark, ev.Shape.AspectRatio, ev.Shape.Utilization, ev.CostHPWL, ev.CostCong, ev.TotalCost)
	}
	fmt.Printf("exact V-P&R winner: AR=%.2f util=%.2f (%v for 20 candidates)\n\n",
		best.AspectRatio, best.Utilization, exactTime)

	// ML acceleration: train on all big clusters' sweeps, predict on the
	// first one.
	var samples []gnn.Sample
	graphs := make([]*gnn.GraphInput, len(big))
	runner := vpr.Runner{Opt: vpr.Options{Seed: 1}}
	for i, m := range big {
		s, err := vpr.InduceSubNetlist(b.Design, m)
		if err != nil {
			log.Fatal(err)
		}
		graphs[i] = gnn.BuildGraphInput(s, features.Options{Seed: 1})
		for _, shape := range vpr.ShapeCandidates() {
			samples = append(samples, gnn.Sample{
				Graph: graphs[i], Shape: shape,
				Label: runner.Evaluate(s, shape).TotalCost,
			})
		}
	}
	model := gnn.NewModel(1)
	model.Fit(samples, gnn.TrainOptions{Epochs: 8, Seed: 1})
	met := model.Evaluate(samples)
	fmt.Printf("GNN trained on %d (cluster, shape) samples: MAE %.4f, R2 %.3f\n",
		len(samples), met.MAE, met.R2)

	t0 = time.Now()
	predicted := model.PredictBestShape(graphs[0])
	mlTime := time.Since(t0)
	fmt.Printf("ML-predicted winner: AR=%.2f util=%.2f (%v for 20 candidates)\n",
		predicted.AspectRatio, predicted.Utilization, mlTime)
	if predicted == best {
		fmt.Println("ML and exact V-P&R agree on the winning shape.")
	} else {
		fmt.Println("ML picked a different (near-optimal) candidate; see the cost table above.")
	}
}
