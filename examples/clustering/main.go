// Clustering comparison: run the same overall flow while swapping the
// clustering engine — Leiden communities, plain multilevel FC (TritonPart's
// default), and the paper's PPA-aware multilevel FC — and report post-route
// PPA, mirroring Table 5 of the paper.
package main

import (
	"fmt"
	"log"

	"ppaclust/internal/designs"
	"ppaclust/internal/flow"
)

func main() {
	spec, _ := designs.Named("jpeg")
	b := designs.Generate(spec)
	fmt.Printf("design %s: %d instances\n\n", b.Design.Name, len(b.Design.Insts))

	def, err := flow.RunDefault(b, flow.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	arms := []struct {
		name   string
		method flow.Method
	}{
		{"Leiden", flow.MethodLeiden},
		{"MFC", flow.MethodMFC},
		{"PPA-aware", flow.MethodPPAAware},
	}
	fmt.Printf("%-10s %9s %9s %9s %9s %9s\n", "method", "clusters", "rWL", "WNS(ps)", "TNS(ns)", "power(W)")
	for _, arm := range arms {
		r, err := flow.Run(b, flow.Options{
			Seed:   1,
			Method: arm.method,
			Shapes: flow.ShapeUniform,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %9d %9.3f %9.1f %9.2f %9.4f\n",
			arm.name, r.Clusters, r.RoutedWL/def.RoutedWL, r.WNS*1e12, r.TNS*1e9, r.Power)
	}
	fmt.Println("\n(rWL normalized to the default flat flow; lower is better everywhere,")
	fmt.Println(" except WNS/TNS where closer to zero is better)")
}
