// Quickstart: generate a small benchmark, run the flat default flow and the
// paper's clustered flow (PPA-aware clustering + uniform cluster shapes),
// and compare post-route PPA — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"

	"ppaclust/internal/designs"
	"ppaclust/internal/flow"
)

func main() {
	// The six paper benchmarks are built in; "aes" is the smallest.
	spec, _ := designs.Named("aes")
	b := designs.Generate(spec)
	st := b.Design.Stats()
	fmt.Printf("design %s: %d instances, %d nets, clock %.2f ns\n",
		b.Design.Name, st.Insts, st.Nets, spec.ClockPeriod*1e9)

	// Baseline: flat placement, routing, CTS, STA, power.
	def, err := flow.RunDefault(b, flow.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's flow: PPA-aware clustering, seeded placement, incremental
	// refinement, then the same evaluation.
	ours, err := flow.Run(b, flow.Options{Seed: 1, Shapes: flow.ShapeUniform})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %14s %14s\n", "metric", "default", "clustered")
	fmt.Printf("%-22s %14.1f %14.1f\n", "HPWL (um)", def.HPWL, ours.HPWL)
	fmt.Printf("%-22s %14.1f %14.1f\n", "routed WL (um)", def.RoutedWL, ours.RoutedWL)
	fmt.Printf("%-22s %14.1f %14.1f\n", "WNS (ps)", def.WNS*1e12, ours.WNS*1e12)
	fmt.Printf("%-22s %14.2f %14.2f\n", "TNS (ns)", def.TNS*1e9, ours.TNS*1e9)
	fmt.Printf("%-22s %14.4f %14.4f\n", "power (W)", def.Power, ours.Power)
	fmt.Printf("%-22s %14v %14v\n", "placement time", def.PlaceTime, ours.PlaceTime)
	fmt.Printf("\nclusters: %d (clustering alone took %v)\n", ours.Clusters, ours.ClusterTime)
}
