// File-driven flow: emit a benchmark as the standard five-file EDA set
// (.v/.def/.sdc/.lib/.lef), load it back through the parsers — the exact
// input path of Algorithm 1 — and run the clustered flow on the loaded
// design, demonstrating that the library works from files, not just from
// the in-memory generator.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ppaclust/internal/def"
	"ppaclust/internal/designs"
	"ppaclust/internal/flow"
	"ppaclust/internal/lef"
	"ppaclust/internal/liberty"
	"ppaclust/internal/sdc"
	"ppaclust/internal/verilog"
)

func main() {
	dir, err := os.MkdirTemp("", "ppaclust-files")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Emit the file set, as ppagen would.
	spec, _ := designs.Named("aes")
	b := designs.Generate(spec)
	files := flow.Files{
		Verilog: write(dir, "aes.v", func(f *os.File) error { return verilog.Write(f, b.Design) }),
		DEF:     write(dir, "aes.def", func(f *os.File) error { return def.Write(f, b.Design) }),
		SDC:     write(dir, "aes.sdc", func(f *os.File) error { return sdc.Write(f, b.Cons) }),
		Liberty: write(dir, "aes.lib", func(f *os.File) error { return liberty.Write(f, b.Design.Lib) }),
		LEF:     write(dir, "aes.lef", func(f *os.File) error { return lef.Write(f, b.Design.Lib) }),
	}

	// Load and run.
	loaded, err := flow.LoadBenchmark(files)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s from files: %d instances, %d nets, clock %.2f ns\n",
		loaded.Design.Name, len(loaded.Design.Insts), len(loaded.Design.Nets),
		loaded.Cons.ClockPeriod*1e9)

	res, err := flow.Run(loaded, flow.Options{Seed: 1, Shapes: flow.ShapeUniform})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered flow on the file-loaded design:\n")
	fmt.Printf("  clusters %d, HPWL %.1f um, rWL %.1f um\n", res.Clusters, res.HPWL, res.RoutedWL)
	fmt.Printf("  WNS %.1f ps, TNS %.2f ns, power %.4f W\n", res.WNS*1e12, res.TNS*1e9, res.Power)
	fmt.Printf("  hold WNS %.1f ps, DRV: %d max-cap, %d max-slew\n",
		res.HoldWNS*1e12, res.DRVCap, res.DRVSlew)
}

func write(dir, name string, fn func(f *os.File) error) string {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", name)
	return path
}
