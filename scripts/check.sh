#!/usr/bin/env bash
# Repo-wide check gate: vet, build, race-enabled tests, and an explicit
# parallel-vs-sequential equivalence pass with a multi-worker budget forced
# through the PPACLUST_WORKERS environment knob.
#
# Usage: scripts/check.sh [quick]
#   quick  skip the full -race test sweep; run vet+build+equivalence only.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

# Project-contract lint: determinism (maporder, ndsource), no-panic
# (nopanic), bounds-checked parsing (rawindex), no dropped parser errors
# (errdrop), no stdout writes from libraries (printlib), no unpreallocated
# append loops in hot-path packages (prealloc), partitioned parallel writes
# (parshare), guarded int32 narrowing on CSR build paths (i32trunc). Runs in
# both modes, ahead of the test sweep, so a contract violation fails fast
# with file:line provenance. The suppression audit then fails on any
# directive that no longer silences a finding.
echo "==> ppalint ./..."
go run ./cmd/ppalint ./...

echo "==> ppalint -suppressions ./..."
go run ./cmd/ppalint -suppressions ./...

if [[ "${1:-}" != "quick" ]]; then
    # The race detector slows the experiment/GNN suites ~10x; on small CPU
    # budgets they overrun go test's default 10m per-package timeout.
    echo "==> go test -race ./..."
    go test -race -timeout 45m ./...
fi

# Determinism contract: every parallel kernel must be bit-identical to the
# sequential path. Run the equivalence tests once more with the worker budget
# forced to 4 via the environment, so the parallel code paths engage even on
# a single-CPU machine (par.Workers honors PPACLUST_WORKERS over GOMAXPROCS).
echo "==> equivalence tests with PPACLUST_WORKERS=4"
PPACLUST_WORKERS=4 go test -race \
    -run 'WorkersEquivalent|ParallelPropagation|ParallelSchedule|Deterministic|Incremental|WirelenCache|ContractMatchesReference|NeighborsMatchesNaive' \
    ./internal/sta/ ./internal/cluster/ ./internal/place/ ./internal/flow/ \
    ./internal/par/ ./internal/netlist/ ./internal/hypergraph/ \
    ./internal/route/ ./internal/cts/ ./internal/designs/

# Allocation contract: the placer/clustering inner-loop primitives must be
# allocation-free in steady state. Run without -race (its instrumentation
# perturbs testing.AllocsPerRun counts).
echo "==> steady-state allocation assertions"
go test -run 'AllocFree' ./internal/netlist/ ./internal/hypergraph/ \
    ./internal/route/ ./internal/cts/ ./internal/sta/

if [[ "${1:-}" != "quick" ]]; then
    # Scale smoke: one 10k-cell generate+place row through the sweep harness,
    # so the scale path (ScaleSpec, the JSON schema, the RSS probe) stays
    # exercised without the multi-minute 100k/1M rows.
    echo "==> scale-sweep smoke row (10k cells)"
    go run ./cmd/ppabench -scale 10k -scale-out /tmp/ppaclust_scale_smoke.json
    rm -f /tmp/ppaclust_scale_smoke.json

    # Flow-scale smoke: the same 10k design through every stage of the flow
    # (gen/cluster/place/sta/route/cts), so the per-stage harness and its
    # JSON schema stay exercised alongside the placement-only sweep.
    echo "==> flow-scale smoke row (10k cells)"
    go run ./cmd/ppabench -scale-flow 10k -scale-flow-out /tmp/ppaclust_flow_smoke.json
    rm -f /tmp/ppaclust_flow_smoke.json

    # Timing-driven smoke: one 10k baseline-vs-driven A/B row with the
    # built-in workers sweep, which re-runs the protocol at W=1/2/4/8 and
    # fails unless every quality field is bit-identical. Keeps the feedback
    # checkpoints, the A/B schema, and the determinism contract exercised.
    echo "==> timing-driven smoke row (10k cells)"
    go run ./cmd/ppabench -timing-driven 10k -workers-sweep \
        -td-out /tmp/ppaclust_td_smoke.json
    rm -f /tmp/ppaclust_td_smoke.json
fi

if [[ "${1:-}" != "quick" ]]; then
    # Crash-resistance contract: each format reader has one Go-native fuzz
    # target seeded from its own writer output plus a handwritten corpus
    # under testdata/fuzz/. A bounded smoke pass per package keeps the CI
    # budget fixed while still exercising the mutation engine; the corpus
    # files themselves always run as plain unit tests in the sweep above.
    echo "==> bounded fuzz smoke pass (10s per format package)"
    for pkg in def lef liberty sdc verilog; do
        go test -run '^$' -fuzz '^FuzzRead' -fuzztime 10s "./internal/$pkg/"
    done
fi

echo "OK"
