// Command ppaflow runs the clustered placement flow (Algorithm 1) — or the
// flat default flow — on one of the built-in benchmark designs, or on a
// benchmark loaded from the standard file set, and prints the PPA metrics
// the paper reports.
//
// Usage:
//
//	ppaflow -design ariane -tool openroad -method ppa -shapes uniform
//	ppaflow -design aes -default
//	ppaflow -verilog t.v -liberty t.lib -lef t.lef -def t.def -sdc t.sdc
//
// Parse failures in loaded files are reported as file:line diagnostics and
// exit non-zero; -lenient downgrades recoverable field errors to warnings.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"ppaclust/internal/def"
	"ppaclust/internal/designs"
	"ppaclust/internal/flow"
	"ppaclust/internal/scan"
	"ppaclust/internal/sta"
	"ppaclust/internal/viz"
)

// fatalParse prints a parse failure with its file:line context when the
// error is structured, and exits non-zero either way.
func fatalParse(err error) {
	var pe *scan.ParseError
	if errors.As(err, &pe) {
		fmt.Fprintf(os.Stderr, "ppaflow: parse error at %v\n", pe)
	} else {
		fmt.Fprintf(os.Stderr, "ppaflow: %v\n", err)
	}
	os.Exit(1)
}

func main() {
	design := flag.String("design", "aes", "benchmark: aes|jpeg|ariane|bp|mb|mpg")
	tool := flag.String("tool", "openroad", "seeded placement recipe: openroad|innovus")
	method := flag.String("method", "ppa", "clustering: ppa|mfc|leiden|louvain")
	shapes := flag.String("shapes", "uniform", "cluster shapes: uniform|random|vpr")
	seed := flag.Int64("seed", 1, "random seed")
	runDefault := flag.Bool("default", false, "run the flat default flow instead")
	skipRoute := flag.Bool("skip-route", false, "stop after placement (HPWL only)")
	repair := flag.Bool("repair", false, "insert buffers on long/high-fanout nets after placement")
	timingDriven := flag.Bool("timing-driven", false, "reweight critical nets from STA feedback at placement overflow checkpoints")
	routabilityDriven := flag.Bool("routability-driven", false, "inflate congested cells from router feedback at placement overflow checkpoints")
	writeDEF := flag.String("write-def", "", "write the final placement to this DEF file")
	writeSVG := flag.String("svg", "", "write a placement visualization to this SVG file")
	report := flag.Int("report", 0, "print a report_checks-style timing report for the N worst paths")
	vlogFile := flag.String("verilog", "", "load benchmark from files: verilog netlist (.v)")
	libFile := flag.String("liberty", "", "load benchmark from files: liberty library (.lib)")
	lefFile := flag.String("lef", "", "load benchmark from files: LEF macros (optional)")
	defFile := flag.String("def", "", "load benchmark from files: DEF floorplan (optional)")
	sdcFile := flag.String("sdc", "", "load benchmark from files: SDC constraints")
	lenient := flag.Bool("lenient", false, "tolerate recoverable parse errors in loaded files (warn and continue)")
	flag.Parse()

	var b *designs.Benchmark
	if *vlogFile != "" || *libFile != "" || *sdcFile != "" || *defFile != "" || *lefFile != "" {
		if *vlogFile == "" || *libFile == "" || *sdcFile == "" {
			fmt.Fprintln(os.Stderr, "ppaflow: loading from files needs -verilog, -liberty and -sdc (-lef and -def are optional)")
			os.Exit(2)
		}
		fmt.Printf("loading benchmark from %s...\n", *vlogFile)
		loaded, warns, err := flow.LoadBenchmarkWith(flow.Files{
			Verilog: *vlogFile, Liberty: *libFile, LEF: *lefFile, DEF: *defFile, SDC: *sdcFile,
		}, *lenient)
		for _, w := range warns {
			fmt.Fprintf(os.Stderr, "ppaflow: warning: %v\n", w)
		}
		if err != nil {
			fatalParse(err)
		}
		b = loaded
	} else {
		spec, ok := designs.Named(*design)
		if !ok {
			fmt.Fprintf(os.Stderr, "ppaflow: unknown design %q\n", *design)
			os.Exit(2)
		}
		fmt.Printf("generating %s (%s)...\n", *design, designs.PaperNames[*design])
		b = designs.Generate(spec)
	}
	st := b.Design.Stats()
	fmt.Printf("  %d instances, %d nets, %d ports, TCP %.2f ns\n",
		st.Insts, st.Nets, st.Ports, b.Cons.ClockPeriod*1e9)

	opt := flow.Options{Seed: *seed, SkipRoute: *skipRoute, RepairBuffers: *repair,
		TimingDriven: *timingDriven, RoutabilityDriven: *routabilityDriven}
	switch strings.ToLower(*tool) {
	case "innovus":
		opt.Tool = flow.ToolInnovus
	default:
		opt.Tool = flow.ToolOpenROAD
	}
	switch strings.ToLower(*method) {
	case "mfc":
		opt.Method = flow.MethodMFC
	case "leiden":
		opt.Method = flow.MethodLeiden
	case "louvain":
		opt.Method = flow.MethodLouvain
	default:
		opt.Method = flow.MethodPPAAware
	}
	switch strings.ToLower(*shapes) {
	case "random":
		opt.Shapes = flow.ShapeRandom
	case "vpr":
		opt.Shapes = flow.ShapeVPR
	default:
		opt.Shapes = flow.ShapeUniform
	}

	var res *flow.Result
	var err error
	if *runDefault {
		fmt.Println("running default (flat) flow...")
		res, err = flow.RunDefault(b, opt)
	} else {
		fmt.Printf("running clustered flow: tool=%v method=%v shapes=%v...\n",
			opt.Tool, opt.Method, opt.Shapes)
		res, err = flow.Run(b, opt)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppaflow: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nresults:\n")
	if !*runDefault {
		fmt.Printf("  clusters        %d (%d shaped by V-P&R)\n", res.Clusters, res.ShapedVPR)
		fmt.Printf("  cluster time    %v\n", res.ClusterTime)
		fmt.Printf("  shape time      %v\n", res.ShapeTime)
		fmt.Printf("  seed place      %v\n", res.SeedPlaceTime)
		fmt.Printf("  incr place      %v\n", res.IncrPlaceTime)
	}
	fmt.Printf("  place time      %v\n", res.PlaceTime)
	fmt.Printf("  HPWL            %.1f um\n", res.HPWL)
	if !*skipRoute {
		fmt.Printf("  routed WL       %.1f um (clock %.1f um)\n", res.RoutedWL, res.ClockWL)
		fmt.Printf("  WNS             %.1f ps\n", res.WNS*1e12)
		fmt.Printf("  TNS             %.2f ns\n", res.TNS*1e9)
		fmt.Printf("  hold WNS/TNS    %.1f ps / %.3f ns\n", res.HoldWNS*1e12, res.HoldTNS*1e9)
		fmt.Printf("  power           %.4f W (switching %.4f, internal %.4f, leakage %.4g)\n",
			res.Power, res.PowerRep.Switching, res.PowerRep.Internal, res.PowerRep.Leakage)
		fmt.Printf("  route overflow  %d\n", res.Overflow)
		fmt.Printf("  max congestion  %.3f\n", res.MaxCongestion)
		fmt.Printf("  DRV             %d max-cap, %d max-slew\n", res.DRVCap, res.DRVSlew)
	}
	if *report > 0 {
		an := sta.New(res.Placed, b.Cons)
		fmt.Println()
		if err := an.WriteReport(os.Stdout, *report); err != nil {
			fmt.Fprintf(os.Stderr, "ppaflow: %v\n", err)
			os.Exit(1)
		}
	}
	if *writeSVG != "" {
		f, err := os.Create(*writeSVG)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppaflow: %v\n", err)
			os.Exit(1)
		}
		if err := viz.WritePlacement(f, res.Placed, viz.Options{}); err != nil {
			fmt.Fprintf(os.Stderr, "ppaflow: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote placement SVG to %s\n", *writeSVG)
	}
	if *writeDEF != "" {
		f, err := os.Create(*writeDEF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppaflow: %v\n", err)
			os.Exit(1)
		}
		if err := def.Write(f, res.Placed); err != nil {
			fmt.Fprintf(os.Stderr, "ppaflow: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote placement to %s\n", *writeDEF)
	}
}
