// Command ppagen emits a synthetic benchmark as the standard EDA file set
// the paper's flow consumes: gate-level Verilog (.v), floorplan DEF (.def),
// constraints SDC (.sdc), library Liberty (.lib) and LEF (.lef).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ppaclust/internal/def"
	"ppaclust/internal/designs"
	"ppaclust/internal/lef"
	"ppaclust/internal/liberty"
	"ppaclust/internal/sdc"
	"ppaclust/internal/verilog"
)

func main() {
	design := flag.String("design", "aes", "benchmark: aes|jpeg|ariane|bp|mb|mpg")
	outDir := flag.String("o", ".", "output directory")
	flag.Parse()

	spec, ok := designs.Named(*design)
	if !ok {
		fmt.Fprintf(os.Stderr, "ppagen: unknown design %q\n", *design)
		os.Exit(2)
	}
	b := designs.Generate(spec)
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		info, _ := os.Stat(path)
		fmt.Printf("wrote %s (%d bytes)\n", path, info.Size())
	}
	write(*design+".v", func(f *os.File) error { return verilog.Write(f, b.Design) })
	write(*design+".def", func(f *os.File) error { return def.Write(f, b.Design) })
	write(*design+".sdc", func(f *os.File) error { return sdc.Write(f, b.Cons) })
	write(*design+".lib", func(f *os.File) error { return liberty.Write(f, b.Design.Lib) })
	write(*design+".lef", func(f *os.File) error { return lef.Write(f, b.Design.Lib) })
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ppagen: %v\n", err)
	os.Exit(1)
}
