// Command ppalint mechanically enforces the repo's project contracts —
// deterministic map iteration in the parallel kernels (maporder), no panics
// in library packages (nopanic), bounds-checked token access in the format
// readers (rawindex), no discarded parser/flow errors (errdrop), no
// stdout writes from libraries (printlib), and no unpreallocated append
// loops in the hot-path packages (prealloc).
//
// Usage:
//
//	ppalint [-json] [-checks maporder,nopanic,...] [packages]
//
// Packages are directory patterns like ./... or ./internal/sta (default
// ./...). Exit status: 0 clean, 1 findings, 2 load/usage failure. Findings
// are suppressed per line with `//ppalint:ignore <check> <reason>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ppaclust/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	checkSpec := flag.String("checks", "", "comma-separated checks to run (default: all of "+
		strings.Join(lint.CheckNames(), ",")+")")
	flag.Parse()

	if err := run(*jsonOut, *checkSpec, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ppalint:", err)
		os.Exit(2)
	}
}

func run(jsonOut bool, checkSpec string, patterns []string) error {
	checks, err := lint.Select(checkSpec)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return err
	}
	dirs, err := lint.Expand(cwd, patterns)
	if err != nil {
		return err
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, p)
	}
	diags := lint.Run(pkgs, checks)
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	if jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{} // a clean run is [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Printf("ppalint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
	return nil
}
