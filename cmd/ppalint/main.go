// Command ppalint mechanically enforces the repo's project contracts —
// deterministic map iteration in the parallel kernels (maporder), no panics
// in library packages (nopanic), bounds-checked token access in the format
// readers (rawindex), no discarded parser/flow errors (errdrop), no
// stdout writes from libraries (printlib), no unpreallocated append
// loops in the hot-path packages (prealloc), no unpartitioned writes through
// captures in par closures (parshare), no unguarded int32/uint32 narrowing
// of counts on the CSR build paths (i32trunc), and no stray nondeterminism
// sources (ndsource).
//
// Usage:
//
//	ppalint [-json] [-checks maporder,nopanic,...] [packages]
//	ppalint -suppressions [-json] [-checks ...] [packages]
//	ppalint -describe <check>
//
// Packages are directory patterns like ./... or ./internal/sta (default
// ./...). Exit status: 0 clean, 1 findings, 2 load/usage failure. Findings
// are suppressed per line with `//ppalint:ignore <check> <reason>`.
//
// -suppressions audits every suppression directive instead of printing
// findings: each is listed with its reason, stale directives (no finding of
// the named check left to silence) are marked STALE, and any stale or
// malformed directive fails the run. -describe prints one check's contract
// and approved idioms.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ppaclust/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	checkSpec := flag.String("checks", "", "comma-separated checks to run (default: all of "+
		strings.Join(lint.CheckNames(), ",")+")")
	audit := flag.Bool("suppressions", false, "audit //ppalint:ignore directives; fail on stale or malformed ones")
	describe := flag.String("describe", "", "print a check's contract and approved idioms, then exit")
	flag.Parse()

	if *describe != "" {
		if err := runDescribe(*describe); err != nil {
			fmt.Fprintln(os.Stderr, "ppalint:", err)
			os.Exit(2)
		}
		return
	}
	if err := run(*jsonOut, *audit, *checkSpec, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ppalint:", err)
		os.Exit(2)
	}
}

// runDescribe prints one check's documentation from the shared catalog — the
// same table the README section is generated from.
func runDescribe(name string) error {
	c, err := lint.Describe(name)
	if err != nil {
		return err
	}
	fmt.Printf("%s — %s\n\n", c.Name, c.Doc)
	fmt.Printf("Contract:\n  %s\n", wrap(c.Contract, 76, "  "))
	if len(c.Approved) > 0 {
		fmt.Println("\nApproved idioms:")
		for _, a := range c.Approved {
			fmt.Printf("  - %s\n", a)
		}
	}
	return nil
}

// wrap reflows s to roughly width columns, continuing lines with indent.
func wrap(s string, width int, indent string) string {
	words := strings.Fields(s)
	var b strings.Builder
	col := 0
	for i, w := range words {
		if i > 0 {
			if col+1+len(w) > width {
				b.WriteString("\n" + indent)
				col = 0
			} else {
				b.WriteByte(' ')
				col++
			}
		}
		b.WriteString(w)
		col += len(w)
	}
	return b.String()
}

func run(jsonOut, audit bool, checkSpec string, patterns []string) error {
	checks, err := lint.Select(checkSpec)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return err
	}
	dirs, err := lint.Expand(cwd, patterns)
	if err != nil {
		return err
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, p)
	}
	relify := func(file string) string {
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return file
	}

	if audit {
		diags, sups := lint.Audit(pkgs, checks)
		return reportAudit(jsonOut, relify, diags, sups)
	}

	diags := lint.Run(pkgs, checks)
	for i := range diags {
		diags[i].File = relify(diags[i].File)
	}
	if jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{} // a clean run is [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Printf("ppalint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
	return nil
}

// reportAudit prints the suppression inventory. Stale directives and
// malformed ones (surfaced by the run as "suppress" diagnostics) fail the
// audit; ordinary findings are the plain mode's business and do not.
func reportAudit(jsonOut bool, relify func(string) string, diags []lint.Diagnostic, sups []lint.Suppression) error {
	var malformed []lint.Diagnostic
	for _, d := range diags {
		if d.Check == "suppress" {
			d.File = relify(d.File)
			malformed = append(malformed, d)
		}
	}
	for i := range sups {
		sups[i].File = relify(sups[i].File)
	}
	stale := 0
	for _, s := range sups {
		if s.Stale {
			stale++
		}
	}
	if jsonOut {
		if sups == nil {
			sups = []lint.Suppression{}
		}
		out := struct {
			Suppressions []lint.Suppression `json:"suppressions"`
			Malformed    []lint.Diagnostic  `json:"malformed"`
			Stale        int                `json:"stale"`
		}{sups, malformed, stale}
		if out.Malformed == nil {
			out.Malformed = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		for _, s := range sups {
			mark := ""
			if s.Stale {
				mark = " [STALE]"
			}
			fmt.Printf("%s:%d: %s — %s%s\n", s.File, s.Line, s.Check, s.Reason, mark)
		}
		for _, d := range malformed {
			fmt.Println(d)
		}
		fmt.Printf("ppalint: %d suppression(s), %d stale, %d malformed\n", len(sups), stale, len(malformed))
	}
	if stale > 0 || len(malformed) > 0 {
		os.Exit(1)
	}
	return nil
}
