package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
	"ppaclust/internal/place"
)

// scaleRow is one design size of the -scale sweep. This sweep times the
// placement core only; the per-throughput field is named place_cells_per_sec
// so it cannot be confused with a whole-flow rate (the flow sweep in
// BENCH_scale_flow.json reports per-stage rates under distinct keys).
type scaleRow struct {
	Cells            int     `json:"cells"`    // requested cell count
	Insts            int     `json:"insts"`    // generated instance count
	Nets             int     `json:"nets"`     // generated net count
	Pins             int     `json:"pins"`     // generated pin count
	GenMS            float64 `json:"gen_ms"`   // design generation wall clock
	PlaceMS          float64 `json:"place_ms"` // global placement wall clock
	PlaceCellsPerSec float64 `json:"place_cells_per_sec"`
	PlaceIters       int     `json:"place_iters"` // outer solve+spread rounds
	CGIters          int     `json:"cg_iters"`    // total CG iterations across solves
	HPWL             float64 `json:"hpwl"`
	Overflow         float64 `json:"overflow"`
	PeakRSSMB        float64 `json:"peak_rss_mb"` // VmHWM after the run, 0 if unknown

	// Jacobi-PCG reference run of the same system (recorded when the sweep
	// is invoked with -scale-compare): the aggregation preconditioner must
	// beat this wall-clock, not just its iteration count.
	PlaceJacobiMS float64 `json:"place_jacobi_ms,omitempty"`
	JacobiCGIters int     `json:"jacobi_cg_iters,omitempty"`
	JacobiHPWL    float64 `json:"jacobi_hpwl,omitempty"`
}

// scaleRun is the BENCH_scale.json document.
type scaleRun struct {
	CPUs       int        `json:"cpus"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Workers    int        `json:"workers"`
	Seed       int64      `json:"seed"`
	Rows       []scaleRow `json:"rows"`
}

// parseScaleSizes parses a size list like "10k,100k,1m" (suffixes k and m,
// case-insensitive, or raw integers).
func parseScaleSizes(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.ToLower(strings.TrimSpace(tok))
		if tok == "" {
			continue
		}
		mult := 1
		switch {
		case strings.HasSuffix(tok, "m"):
			mult, tok = 1000000, strings.TrimSuffix(tok, "m")
		case strings.HasSuffix(tok, "k"):
			mult, tok = 1000, strings.TrimSuffix(tok, "k")
		}
		v, err := strconv.Atoi(tok)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad size %q", tok)
		}
		out = append(out, v*mult)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty size list")
	}
	return out, nil
}

// peakRSSMB reads the process high-water resident set (VmHWM) from
// /proc/self/status. Returns 0 on platforms without procfs.
func peakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// printMemStats dumps the Go heap counters after a row, for -memstats runs.
func printMemStats(label string) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("  %-10s heap=%.1fMB sys=%.1fMB allocs=%.1fMB gc=%d\n",
		label,
		float64(ms.HeapAlloc)/(1<<20),
		float64(ms.Sys)/(1<<20),
		float64(ms.TotalAlloc)/(1<<20),
		ms.NumGC)
}

// countPins sums the design's net pin lists.
func countPins(d *netlist.Design) int {
	pins := 0
	for _, n := range d.Nets {
		pins += len(n.Pins)
	}
	return pins
}

// runScale generates each requested size and times global placement on it,
// writing the machine-readable sweep to outPath. With compare set, each row
// is also placed with the preconditioner forced to Jacobi-PCG so the
// aggregation path's wall-clock advantage is recorded next to its own time.
func runScale(sizes []int, seed int64, workers int, memstats, compare bool, outPath string) {
	f, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	run := scaleRun{
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    par.Workers(workers),
		Seed:       seed,
	}
	for _, cells := range sizes {
		spec := designs.ScaleSpec(cells, 4242+seed)
		t0 := time.Now()
		b := designs.GenerateWorkers(spec, workers)
		genMS := float64(time.Since(t0).Microseconds()) / 1000

		d := b.Design
		t1 := time.Now()
		res := place.Global(d, place.Options{Seed: 7, Workers: workers})
		placeMS := float64(time.Since(t1).Microseconds()) / 1000

		row := scaleRow{
			Cells:            cells,
			Insts:            len(d.Insts),
			Nets:             len(d.Nets),
			Pins:             countPins(d),
			GenMS:            genMS,
			PlaceMS:          placeMS,
			PlaceCellsPerSec: float64(len(d.Insts)) / (placeMS / 1000),
			PlaceIters:       res.Iterations,
			CGIters:          res.CGIterations,
			HPWL:             res.HPWL,
			Overflow:         res.Overflow,
			PeakRSSMB:        peakRSSMB(),
		}
		if compare {
			t2 := time.Now()
			jres := place.Global(d, place.Options{Seed: 7, Workers: workers, Precond: -1})
			row.PlaceJacobiMS = float64(time.Since(t2).Microseconds()) / 1000
			row.JacobiCGIters = jres.CGIterations
			row.JacobiHPWL = jres.HPWL
		}
		run.Rows = append(run.Rows, row)
		fmt.Printf("scale %8d cells: gen %8.1f ms, place %9.1f ms (%7.0f cells/s), hpwl %.4g, rss %.0f MB\n",
			cells, genMS, placeMS, row.PlaceCellsPerSec, row.HPWL, row.PeakRSSMB)
		if compare {
			fmt.Printf("  jacobi-pcg reference: place %9.1f ms, cg_iters %d, hpwl %.4g\n",
				row.PlaceJacobiMS, row.JacobiCGIters, row.JacobiHPWL)
		}
		if memstats {
			printMemStats(spec.Name)
		}
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(run); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("scale sweep written to %s\n", outPath)
}
