// Command ppabench regenerates the paper's evaluation: Tables 1-6, the
// Section 4.4 GNN metrics, and Figure 5, writing the paper-vs-measured
// report to EXPERIMENTS.md (or stdout).
//
// Usage:
//
//	ppabench                 # full suite, writes EXPERIMENTS.md
//	ppabench -fast           # shrunken designs/dataset, for a quick look
//	ppabench -table 2        # print one table to stdout
//	ppabench -figure 5       # print the Figure 5 sweep
//	ppabench -table gnn      # print the model-quality metrics
//	ppabench -table ablation # extension: per-term PPA-awareness ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ppaclust/internal/experiments"
)

func main() {
	fast := flag.Bool("fast", false, "shrink designs and ML dataset for a quick run")
	seed := flag.Int64("seed", 1, "suite seed")
	table := flag.String("table", "", "print one table (1-6, gnn, runtime, ablation) to stdout")
	figure := flag.String("figure", "", "print one figure (5) to stdout")
	out := flag.String("o", "EXPERIMENTS.md", "report output path (full runs)")
	flag.Parse()

	s := experiments.NewSuite(*fast, *seed)
	switch {
	case *table != "":
		printTable(s, *table)
	case *figure == "5":
		printFigure5(s)
	default:
		runAll(s, *out)
	}
}

func runAll(s *experiments.Suite, out string) {
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	t0 := time.Now()
	fmt.Printf("running the full evaluation suite (this trains the GNN and runs every flow)...\n")
	claims := s.WriteReport(f)
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	pass := 0
	for _, c := range claims {
		mark := "PASS"
		if c.Pass {
			pass++
		} else {
			mark = "FAIL"
		}
		fmt.Printf("  [%s] %s — %s\n", mark, c.Name, c.Measured)
	}
	fmt.Printf("%d/%d shape checks passed; report written to %s (%v)\n",
		pass, len(claims), out, time.Since(t0).Round(time.Second))
}

func printTable(s *experiments.Suite, table string) {
	switch table {
	case "1":
		var rows [][]string
		for _, r := range s.Table1() {
			rows = append(rows, []string{r.Design, itoa(r.Insts), itoa(r.Nets), fmt.Sprintf("%.2f", r.TCPns)})
		}
		experiments.FprintTable(os.Stdout, []string{"Design", "#Insts", "#Nets", "TCP(ns)"}, rows)
	case "2":
		var rows [][]string
		for _, r := range s.Table2() {
			rows = append(rows, []string{r.Design,
				fmt.Sprintf("%.3f", r.BlobHPWL), fmt.Sprintf("%.3f", r.BlobCPU),
				fmt.Sprintf("%.3f", r.OursHPWL), fmt.Sprintf("%.3f", r.OursCPU)})
		}
		experiments.FprintTable(os.Stdout, []string{"Design", "[9] HPWL", "[9] CPU", "Ours HPWL", "Ours CPU"}, rows)
	case "3", "4", "5", "6":
		var data []experiments.PPARow
		switch table {
		case "3":
			data = s.Table3()
		case "4":
			data = s.Table4()
		case "5":
			data = s.Table5()
		case "6":
			data = s.Table6()
		}
		var rows [][]string
		for _, r := range data {
			rows = append(rows, []string{r.Design, r.Flow,
				fmt.Sprintf("%.3f", r.RWL), fmt.Sprintf("%.1f", r.WNSps),
				fmt.Sprintf("%.3f", r.TNSns), fmt.Sprintf("%.4f", r.PowerW)})
		}
		experiments.FprintTable(os.Stdout, []string{"Design", "Flow", "rWL", "WNS(ps)", "TNS(ns)", "Power(W)"}, rows)
	case "runtime":
		var rows [][]string
		for _, r := range s.RuntimeBreakdown() {
			rows = append(rows, []string{r.Design, r.Cluster.String(), r.Shape.String(),
				r.SeedPlace.String(), r.IncrPlace.String(), r.Total.String(), r.DefaultPlace.String()})
		}
		experiments.FprintTable(os.Stdout, []string{"Design", "Cluster", "Shapes", "Seed", "Incr", "Total", "DefaultPlace"}, rows)
	case "ablation":
		var rows [][]string
		for _, r := range s.AblationClusterTerms() {
			rows = append(rows, []string{r.Design, r.Arm,
				fmt.Sprintf("%.3f", r.RWL), fmt.Sprintf("%.1f", r.WNSps),
				fmt.Sprintf("%.3f", r.TNSns), fmt.Sprintf("%.4f", r.PowerW)})
		}
		experiments.FprintTable(os.Stdout, []string{"Design", "Arm", "rWL", "WNS(ps)", "TNS(ns)", "Power(W)"}, rows)
	case "gnn":
		rep := s.GNNMetrics()
		experiments.FprintTable(os.Stdout, []string{"Split", "MAE", "R2", "N"}, [][]string{
			{"train", fmt.Sprintf("%.3f", rep.Train.MAE), fmt.Sprintf("%.3f", rep.Train.R2), itoa(rep.Train.N)},
			{"val", fmt.Sprintf("%.3f", rep.Val.MAE), fmt.Sprintf("%.3f", rep.Val.R2), itoa(rep.Val.N)},
			{"test", fmt.Sprintf("%.3f", rep.Test.MAE), fmt.Sprintf("%.3f", rep.Test.R2), itoa(rep.Test.N)},
		})
		fmt.Printf("labels [%.3f, %.3f] mean %.3f; %d samples; speedup %.1fx; train %v\n",
			rep.LabelMin, rep.LabelMax, rep.LabelMean, rep.Samples, rep.SpeedupX, rep.TrainTime.Round(time.Millisecond))
	default:
		fmt.Fprintf(os.Stderr, "ppabench: unknown table %q\n", table)
		os.Exit(2)
	}
}

func printFigure5(s *experiments.Suite) {
	var rows [][]string
	for _, p := range s.Figure5() {
		rows = append(rows, []string{p.Param, fmt.Sprintf("x%.0f", p.Multiplier), fmt.Sprintf("%.4f", p.Score)})
	}
	experiments.FprintTable(os.Stdout, []string{"Param", "Mult", "Norm. HPWL"}, rows)
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
