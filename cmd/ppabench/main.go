// Command ppabench regenerates the paper's evaluation: Tables 1-6, the
// Section 4.4 GNN metrics, and Figure 5, writing the paper-vs-measured
// report to EXPERIMENTS.md (or stdout).
//
// Usage:
//
//	ppabench                 # full suite, writes EXPERIMENTS.md
//	ppabench -fast           # shrunken designs/dataset, for a quick look
//	ppabench -table 2        # print one table to stdout
//	ppabench -figure 5       # print the Figure 5 sweep
//	ppabench -table gnn      # print the model-quality metrics
//	ppabench -table ablation # extension: per-term PPA-awareness ablation
//	ppabench -workers 4      # goroutine budget (0 = GOMAXPROCS)
//	ppabench -json out.json  # machine-readable per-table wall-clock + metrics
//	ppabench -scale 10k,100k,1m -scale-out BENCH_scale.json   # scale sweep
//	ppabench -scale-flow 10k,100k,1m   # per-stage flow sweep -> BENCH_scale_flow.json
//	ppabench -scale-flow 10k,100k,1m -workers-sweep   # same, at W=1/2/4/8 with speedups
//	ppabench -timing-driven tables   # timing/routability-driven A/B on the Table-3/4 protocols
//	ppabench -timing-driven 10k -workers-sweep   # flat A/B smoke with the W=1/2/4/8 identity gate
//	ppabench -scale 100k -memstats   # one size, with Go heap counters
//	ppabench -cpuprofile cpu.out -memprofile mem.out   # pprof profiles
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ppaclust/internal/experiments"
	"ppaclust/internal/par"
)

// check unwraps a (value, error) pair, reporting the error and exiting on
// failure: the suite's library code returns errors, and dying is the CLI's
// job.
func check[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	return v
}

func main() {
	fast := flag.Bool("fast", false, "shrink designs and ML dataset for a quick run")
	seed := flag.Int64("seed", 1, "suite seed")
	workers := flag.Int("workers", 0,
		"goroutine budget for all kernels and fan-out (0 = PPACLUST_WORKERS or GOMAXPROCS, 1 = sequential)")
	table := flag.String("table", "", "print one table (1-6, gnn, runtime, ablation) to stdout")
	figure := flag.String("figure", "", "print one figure (5) to stdout")
	jsonOut := flag.String("json", "", "write per-benchmark wall-clock and headline metrics as JSON")
	scale := flag.String("scale", "",
		"run the scale sweep over a size list like \"10k,100k,1m\" instead of the paper suite")
	scaleOut := flag.String("scale-out", "BENCH_scale.json", "scale sweep output path")
	scaleCompare := flag.Bool("scale-compare", false,
		"also place each -scale row with Jacobi-PCG forced, recording the reference wall-clock")
	scaleFlow := flag.String("scale-flow", "",
		"run the per-stage flow sweep (gen/cluster/place/sta/route/cts) over a size list")
	scaleFlowOut := flag.String("scale-flow-out", "BENCH_scale_flow.json", "flow sweep output path")
	workersSweep := flag.Bool("workers-sweep", false,
		"with -scale-flow: run each size at workers=1,2,4,8, check quality fields bit-identical, record per-stage speedups; with -timing-driven: re-run the A/B at workers=1,2,4,8 and check the rows bit-identical")
	timingDriven := flag.String("timing-driven", "",
		"run the timing/routability-driven placement A/B: \"tables\" for the Table-3/4 protocols, or a size list like \"10k\" for flat scale designs")
	tdOut := flag.String("td-out", "BENCH_timing_driven.json", "timing-driven A/B output path")
	memstats := flag.Bool("memstats", false, "print Go heap counters after each scale row")
	out := flag.String("o", "EXPERIMENTS.md", "report output path (full runs)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
			os.Exit(1)
		}
	}

	s := experiments.NewSuite(*fast, *seed, *workers)
	switch {
	case *timingDriven != "":
		runTimingDriven(*timingDriven, *fast, *seed, *workers, *workersSweep, *tdOut)
	case *scaleFlow != "":
		runScaleFlow(check(parseScaleSizes(*scaleFlow)), *seed, *workers, *workersSweep, *scaleFlowOut)
	case *scale != "":
		runScale(check(parseScaleSizes(*scale)), *seed, *workers, *memstats, *scaleCompare, *scaleOut)
	case *jsonOut != "":
		runJSON(s, *jsonOut)
	case *table != "":
		printTable(s, *table)
	case *figure == "5":
		printFigure5(s)
	default:
		runAll(s, *out)
	}

	// Profiles flush on the success path only; error paths os.Exit above.
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
			os.Exit(1)
		}
	}
}

// jsonBench is one timed benchmark entry of the -json output.
type jsonBench struct {
	Name    string             `json:"name"`
	WallMS  float64            `json:"wall_ms"`
	Metrics map[string]float64 `json:"metrics"`
}

// jsonRun is the top-level -json document.
type jsonRun struct {
	CPUs       int         `json:"cpus"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Workers    int         `json:"workers"`
	Fast       bool        `json:"fast"`
	Seed       int64       `json:"seed"`
	TotalMS    float64     `json:"total_ms"`
	Benchmarks []jsonBench `json:"benchmarks"`
}

// runJSON times every table/figure of the suite and writes wall-clock plus
// the same headline metrics the root bench_test.go reports.
func runJSON(s *experiments.Suite, path string) {
	// Open the output first: a bad path should fail before the suite runs,
	// not after minutes of benchmarking.
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	run := jsonRun{
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    par.Workers(s.Workers),
		Fast:       s.Fast,
		Seed:       s.Seed,
	}
	mark := func(name string, fn func() map[string]float64) {
		t0 := time.Now()
		m := fn()
		ms := float64(time.Since(t0).Microseconds()) / 1000
		run.TotalMS += ms
		run.Benchmarks = append(run.Benchmarks, jsonBench{Name: name, WallMS: ms, Metrics: m})
		fmt.Printf("  %-18s %10.1f ms\n", name, ms)
	}
	// Train first so model cost doesn't land inside the first table that
	// happens to need it.
	mark("TrainModel", func() map[string]float64 {
		rep := check(s.GNNMetrics())
		return map[string]float64{"test_mae": rep.Test.MAE, "test_r2": rep.Test.R2,
			"samples": float64(rep.Samples)}
	})
	mark("Table1", func() map[string]float64 {
		var insts, nets int
		for _, r := range check(s.Table1()) {
			insts += r.Insts
			nets += r.Nets
		}
		return map[string]float64{"total_insts": float64(insts), "total_nets": float64(nets)}
	})
	mark("Table2", func() map[string]float64 {
		var cpu, hpwl float64
		rows := check(s.Table2())
		for _, r := range rows {
			cpu += r.OursCPU
			hpwl += r.OursHPWL
		}
		n := float64(len(rows))
		return map[string]float64{"ours_cpu_ratio": cpu / n, "ours_hpwl_ratio": hpwl / n}
	})
	mark("Table3", func() map[string]float64 {
		return map[string]float64{"tns_improvement_ns": tnsImprovement(check(s.Table3()))}
	})
	mark("Table4", func() map[string]float64 {
		return map[string]float64{"tns_improvement_ns": tnsImprovement(check(s.Table4()))}
	})
	mark("Table5", func() map[string]float64 {
		var ours, mfc float64
		for _, r := range check(s.Table5()) {
			switch r.Flow {
			case "Ours":
				ours += r.TNSns
			case "MFC":
				mfc += r.TNSns
			}
		}
		return map[string]float64{"ours_minus_mfc_tns_ns": ours - mfc}
	})
	mark("Table6", func() map[string]float64 {
		var ml, uni float64
		for _, r := range check(s.Table6()) {
			switch r.Flow {
			case "V-P&R_ML":
				ml += r.TNSns
			case "Uniform":
				uni += r.TNSns
			}
		}
		return map[string]float64{"ml_minus_uniform_tns_ns": ml - uni}
	})
	mark("Figure5", func() map[string]float64 {
		var worst float64
		for _, p := range check(s.Figure5()) {
			if p.Score > worst {
				worst = p.Score
			}
		}
		return map[string]float64{"worst_norm_hpwl": worst}
	})
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(run); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("workers=%d total %.1f ms; JSON written to %s\n", run.Workers, run.TotalMS, path)
}

func tnsImprovement(rows []experiments.PPARow) float64 {
	var def, ours float64
	for _, r := range rows {
		switch r.Flow {
		case "Default":
			def += r.TNSns
		case "Ours":
			ours += r.TNSns
		}
	}
	return ours - def
}

func runAll(s *experiments.Suite, out string) {
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	t0 := time.Now()
	fmt.Printf("running the full evaluation suite (this trains the GNN and runs every flow)...\n")
	claims, err := s.WriteReport(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	pass := 0
	for _, c := range claims {
		mark := "PASS"
		if c.Pass {
			pass++
		} else {
			mark = "FAIL"
		}
		fmt.Printf("  [%s] %s — %s\n", mark, c.Name, c.Measured)
	}
	fmt.Printf("%d/%d shape checks passed; report written to %s (%v)\n",
		pass, len(claims), out, time.Since(t0).Round(time.Second))
}

func printTable(s *experiments.Suite, table string) {
	switch table {
	case "1":
		var rows [][]string
		for _, r := range check(s.Table1()) {
			rows = append(rows, []string{r.Design, itoa(r.Insts), itoa(r.Nets), fmt.Sprintf("%.2f", r.TCPns)})
		}
		experiments.FprintTable(os.Stdout, []string{"Design", "#Insts", "#Nets", "TCP(ns)"}, rows)
	case "2":
		var rows [][]string
		for _, r := range check(s.Table2()) {
			rows = append(rows, []string{r.Design,
				fmt.Sprintf("%.3f", r.BlobHPWL), fmt.Sprintf("%.3f", r.BlobCPU),
				fmt.Sprintf("%.3f", r.OursHPWL), fmt.Sprintf("%.3f", r.OursCPU)})
		}
		experiments.FprintTable(os.Stdout, []string{"Design", "[9] HPWL", "[9] CPU", "Ours HPWL", "Ours CPU"}, rows)
	case "3", "4", "5", "6":
		var data []experiments.PPARow
		switch table {
		case "3":
			data = check(s.Table3())
		case "4":
			data = check(s.Table4())
		case "5":
			data = check(s.Table5())
		case "6":
			data = check(s.Table6())
		}
		var rows [][]string
		for _, r := range data {
			rows = append(rows, []string{r.Design, r.Flow,
				fmt.Sprintf("%.3f", r.RWL), fmt.Sprintf("%.1f", r.WNSps),
				fmt.Sprintf("%.3f", r.TNSns), fmt.Sprintf("%.4f", r.PowerW)})
		}
		experiments.FprintTable(os.Stdout, []string{"Design", "Flow", "rWL", "WNS(ps)", "TNS(ns)", "Power(W)"}, rows)
	case "runtime":
		var rows [][]string
		for _, r := range check(s.RuntimeBreakdown()) {
			rows = append(rows, []string{r.Design, r.Cluster.String(), r.Shape.String(),
				r.SeedPlace.String(), r.IncrPlace.String(), r.Total.String(), r.DefaultPlace.String()})
		}
		experiments.FprintTable(os.Stdout, []string{"Design", "Cluster", "Shapes", "Seed", "Incr", "Total", "DefaultPlace"}, rows)
	case "ablation":
		var rows [][]string
		for _, r := range check(s.AblationClusterTerms()) {
			rows = append(rows, []string{r.Design, r.Arm,
				fmt.Sprintf("%.3f", r.RWL), fmt.Sprintf("%.1f", r.WNSps),
				fmt.Sprintf("%.3f", r.TNSns), fmt.Sprintf("%.4f", r.PowerW)})
		}
		experiments.FprintTable(os.Stdout, []string{"Design", "Arm", "rWL", "WNS(ps)", "TNS(ns)", "Power(W)"}, rows)
	case "gnn":
		rep := check(s.GNNMetrics())
		experiments.FprintTable(os.Stdout, []string{"Split", "MAE", "R2", "N"}, [][]string{
			{"train", fmt.Sprintf("%.3f", rep.Train.MAE), fmt.Sprintf("%.3f", rep.Train.R2), itoa(rep.Train.N)},
			{"val", fmt.Sprintf("%.3f", rep.Val.MAE), fmt.Sprintf("%.3f", rep.Val.R2), itoa(rep.Val.N)},
			{"test", fmt.Sprintf("%.3f", rep.Test.MAE), fmt.Sprintf("%.3f", rep.Test.R2), itoa(rep.Test.N)},
		})
		fmt.Printf("labels [%.3f, %.3f] mean %.3f; %d samples; speedup %.1fx; train %v\n",
			rep.LabelMin, rep.LabelMax, rep.LabelMean, rep.Samples, rep.SpeedupX, rep.TrainTime.Round(time.Millisecond))
	default:
		fmt.Fprintf(os.Stderr, "ppabench: unknown table %q\n", table)
		os.Exit(2)
	}
}

func printFigure5(s *experiments.Suite) {
	var rows [][]string
	for _, p := range check(s.Figure5()) {
		rows = append(rows, []string{p.Param, fmt.Sprintf("x%.0f", p.Multiplier), fmt.Sprintf("%.4f", p.Score)})
	}
	experiments.FprintTable(os.Stdout, []string{"Param", "Mult", "Norm. HPWL"}, rows)
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
