package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"ppaclust/internal/cluster"
	"ppaclust/internal/cts"
	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
	"ppaclust/internal/place"
	"ppaclust/internal/route"
	"ppaclust/internal/sta"
)

// flowRow is one (size, workers) point of the -scale-flow sweep: every stage
// of the paper flow timed separately on the same design, per-stage throughput
// in cells/sec, and the headline PPA numbers the stages produce. In
// -workers-sweep mode the speedup fields compare against the W=1 row of the
// same size; quality fields are bit-identical across worker counts by the
// repo's determinism contract (the sweep aborts if they are not).
type flowRow struct {
	Cells   int `json:"cells"` // requested cell count
	Workers int `json:"workers"`
	Insts   int `json:"insts"`
	Nets    int `json:"nets"`
	Pins    int `json:"pins"`

	GenMS     float64 `json:"gen_ms"`     // synthetic design generation
	ClusterMS float64 `json:"cluster_ms"` // MultilevelFC over the netlist
	PlaceMS   float64 `json:"place_ms"`   // global placement
	STAMS     float64 `json:"sta_ms"`     // analyzer build + full timing
	RouteMS   float64 `json:"route_ms"`   // global routing + congestion
	CTSMS     float64 `json:"cts_ms"`     // clock-tree synthesis + propagated STA
	FlowMS    float64 `json:"flow_ms"`    // sum of the six stages

	GenCellsPerSec     float64 `json:"gen_cells_per_sec"`
	ClusterCellsPerSec float64 `json:"cluster_cells_per_sec"`
	PlaceCellsPerSec   float64 `json:"place_cells_per_sec"`
	STACellsPerSec     float64 `json:"sta_cells_per_sec"`
	RouteCellsPerSec   float64 `json:"route_cells_per_sec"`
	CTSCellsPerSec     float64 `json:"cts_cells_per_sec"`

	Clusters   int     `json:"clusters"`
	PlaceIters int     `json:"place_iters"`
	CGIters    int     `json:"cg_iters"`
	HPWL       float64 `json:"hpwl"`
	Overflow   int     `json:"route_overflow"` // routed demand above capacity
	MaxCong    float64 `json:"max_congestion"` // highest GCell edge utilization
	BinOvf     float64 `json:"bin_overflow"`   // placer bin overflow at stop
	WNSPS      float64 `json:"wns_ps"`         // post-CTS propagated-clock WNS
	TNSPS      float64 `json:"tns_ps"`
	PeakRSSMB  float64 `json:"peak_rss_mb"` // VmHWM after the row, 0 if unknown

	// Speedups vs the W=1 row of the same size (-workers-sweep only).
	FlowSpeedup    float64 `json:"flow_speedup,omitempty"`
	GenSpeedup     float64 `json:"gen_speedup,omitempty"`
	ClusterSpeedup float64 `json:"cluster_speedup,omitempty"`
	PlaceSpeedup   float64 `json:"place_speedup,omitempty"`
	STASpeedup     float64 `json:"sta_speedup,omitempty"`
	RouteSpeedup   float64 `json:"route_speedup,omitempty"`
	CTSSpeedup     float64 `json:"cts_speedup,omitempty"`
}

// flowRun is the BENCH_scale_flow.json document.
type flowRun struct {
	CPUs       int       `json:"cpus"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Workers    int       `json:"workers"`
	Seed       int64     `json:"seed"`
	Rows       []flowRow `json:"rows"`
}

// ms converts an elapsed duration to milliseconds with microsecond grain.
func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// runFlowOnce runs the six flow stages — generate, cluster, place, STA,
// route, CTS — on one freshly generated design at one worker count, timing
// each stage on its own. Generation bypasses the benchmark cache so repeat
// runs of the same size (the workers sweep) never time a cache hit.
func runFlowOnce(cells int, seed int64, workers int) flowRow {
	spec := designs.ScaleSpec(cells, 4242+seed)

	t0 := time.Now()
	b := designs.GenerateWorkers(spec, workers)
	genMS := ms(time.Since(t0))
	d := b.Design

	t1 := time.Now()
	hv := d.ToHypergraph()
	cres := cluster.MultilevelFC(hv.H, cluster.Options{
		Seed:    seed,
		Workers: workers,
	})
	clusterMS := ms(time.Since(t1))

	t2 := time.Now()
	pres := place.Global(d, place.Options{Seed: 7, Workers: workers})
	placeMS := ms(time.Since(t2))

	t3 := time.Now()
	an := sta.New(d, b.Cons)
	an.Workers = workers
	sum := an.Timing()
	staMS := ms(time.Since(t3))

	t4 := time.Now()
	rres := route.GlobalRoute(d, route.Options{Workers: workers})
	routeMS := ms(time.Since(t4))

	t5 := time.Now()
	var clk *netlist.Net
	for _, n := range d.Nets {
		if n.Clock {
			clk = n
			break
		}
	}
	if clk != nil {
		copt := cts.Options{BufMaster: d.Lib.Master("CLKBUF_X2"), SkipArrivalMap: true, Workers: workers}
		ctsRes := cts.Synthesize(d, clk, copt)
		if len(ctsRes.ArrivalList) > 0 {
			an.SetClockArrivalList(ctsRes.ArrivalList)
			sum = an.Timing()
		}
	}
	ctsMS := ms(time.Since(t5))

	rate := func(stageMS float64) float64 {
		if stageMS <= 0 {
			return 0
		}
		return float64(len(d.Insts)) / (stageMS / 1000)
	}
	return flowRow{
		Cells:              cells,
		Workers:            par.Workers(workers),
		Insts:              len(d.Insts),
		Nets:               len(d.Nets),
		Pins:               countPins(d),
		GenMS:              genMS,
		ClusterMS:          clusterMS,
		PlaceMS:            placeMS,
		STAMS:              staMS,
		RouteMS:            routeMS,
		CTSMS:              ctsMS,
		FlowMS:             genMS + clusterMS + placeMS + staMS + routeMS + ctsMS,
		GenCellsPerSec:     rate(genMS),
		ClusterCellsPerSec: rate(clusterMS),
		PlaceCellsPerSec:   rate(placeMS),
		STACellsPerSec:     rate(staMS),
		RouteCellsPerSec:   rate(routeMS),
		CTSCellsPerSec:     rate(ctsMS),
		Clusters:           cres.NumClusters,
		PlaceIters:         pres.Iterations,
		CGIters:            pres.CGIterations,
		HPWL:               pres.HPWL,
		Overflow:           rres.Overflow,
		MaxCong:            rres.MaxCongestion,
		BinOvf:             pres.Overflow,
		WNSPS:              sum.WNS * 1e12,
		TNSPS:              sum.TNS * 1e12,
		PeakRSSMB:          peakRSSMB(),
	}
}

// printFlowRow is the one-line progress report for a finished flow row.
func printFlowRow(row flowRow) {
	fmt.Printf("flow %8d cells W=%d: gen %7.0f cluster %7.0f place %7.0f sta %7.0f route %7.0f cts %7.0f ms, wns %.1f ps, rss %.0f MB\n",
		row.Cells, row.Workers, row.GenMS, row.ClusterMS, row.PlaceMS, row.STAMS, row.RouteMS, row.CTSMS, row.WNSPS, row.PeakRSSMB)
}

// checkSweepIdentity compares the quality fields of a multi-worker row
// against the W=1 reference of the same size. The determinism contract says
// they must match to the bit; a mismatch is a correctness bug, so the sweep
// dies loudly rather than recording tainted numbers.
func checkSweepIdentity(base, row flowRow) error {
	if row.Insts != base.Insts || row.Nets != base.Nets || row.Pins != base.Pins {
		return fmt.Errorf("netlist differs: insts/nets/pins %d/%d/%d vs %d/%d/%d",
			row.Insts, row.Nets, row.Pins, base.Insts, base.Nets, base.Pins)
	}
	if row.Clusters != base.Clusters || row.CGIters != base.CGIters || row.PlaceIters != base.PlaceIters {
		return fmt.Errorf("trajectory differs: clusters/cg/rounds %d/%d/%d vs %d/%d/%d",
			row.Clusters, row.CGIters, row.PlaceIters, base.Clusters, base.CGIters, base.PlaceIters)
	}
	if math.Float64bits(row.HPWL) != math.Float64bits(base.HPWL) {
		return fmt.Errorf("hpwl differs: %v vs %v", row.HPWL, base.HPWL)
	}
	if row.Overflow != base.Overflow ||
		math.Float64bits(row.MaxCong) != math.Float64bits(base.MaxCong) ||
		math.Float64bits(row.BinOvf) != math.Float64bits(base.BinOvf) {
		return fmt.Errorf("congestion differs: ovf %d/%v/%v vs %d/%v/%v",
			row.Overflow, row.MaxCong, row.BinOvf, base.Overflow, base.MaxCong, base.BinOvf)
	}
	if math.Float64bits(row.WNSPS) != math.Float64bits(base.WNSPS) ||
		math.Float64bits(row.TNSPS) != math.Float64bits(base.TNSPS) {
		return fmt.Errorf("timing differs: wns/tns %v/%v vs %v/%v",
			row.WNSPS, row.TNSPS, base.WNSPS, base.TNSPS)
	}
	return nil
}

// sweepWorkerCounts are the worker counts a -workers-sweep row set covers.
var sweepWorkerCounts = []int{1, 2, 4, 8}

// runScaleFlow runs every flow stage once per requested size, timing each
// stage on its own, and writes the machine-readable sweep to outPath. Unlike
// -scale (placement only), this answers "which stage falls over first" as
// designs grow. With sweep set, every size runs at workers=1/2/4/8: the
// quality fields are checked bit-identical across worker counts and each row
// records its per-stage speedup over the W=1 reference.
func runScaleFlow(sizes []int, seed int64, workers int, sweep bool, outPath string) {
	f, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	run := flowRun{
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    par.Workers(workers),
		Seed:       seed,
	}
	speedup := func(baseMS, rowMS float64) float64 {
		if rowMS <= 0 {
			return 0
		}
		return baseMS / rowMS
	}
	for _, cells := range sizes {
		if !sweep {
			row := runFlowOnce(cells, seed, workers)
			run.Rows = append(run.Rows, row)
			printFlowRow(row)
			continue
		}
		var base flowRow
		for i, w := range sweepWorkerCounts {
			row := runFlowOnce(cells, seed, w)
			if i == 0 {
				base = row
			} else if err := checkSweepIdentity(base, row); err != nil {
				fmt.Fprintf(os.Stderr, "ppabench: workers-sweep W=%d not bit-identical to W=1 at %d cells: %v\n", w, cells, err)
				os.Exit(1)
			}
			row.FlowSpeedup = speedup(base.FlowMS, row.FlowMS)
			row.GenSpeedup = speedup(base.GenMS, row.GenMS)
			row.ClusterSpeedup = speedup(base.ClusterMS, row.ClusterMS)
			row.PlaceSpeedup = speedup(base.PlaceMS, row.PlaceMS)
			row.STASpeedup = speedup(base.STAMS, row.STAMS)
			row.RouteSpeedup = speedup(base.RouteMS, row.RouteMS)
			row.CTSSpeedup = speedup(base.CTSMS, row.CTSMS)
			run.Rows = append(run.Rows, row)
			printFlowRow(row)
		}
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(run); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("flow-scale sweep written to %s\n", outPath)
}
