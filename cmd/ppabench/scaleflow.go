package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ppaclust/internal/cluster"
	"ppaclust/internal/cts"
	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
	"ppaclust/internal/place"
	"ppaclust/internal/route"
	"ppaclust/internal/sta"
)

// flowRow is one design size of the -scale-flow sweep: every stage of the
// paper flow timed separately on the same design, plus the headline PPA
// numbers the stages produce.
type flowRow struct {
	Cells int `json:"cells"` // requested cell count
	Insts int `json:"insts"`
	Nets  int `json:"nets"`
	Pins  int `json:"pins"`

	GenMS     float64 `json:"gen_ms"`     // synthetic design generation
	ClusterMS float64 `json:"cluster_ms"` // MultilevelFC over the netlist
	PlaceMS   float64 `json:"place_ms"`   // global placement
	STAMS     float64 `json:"sta_ms"`     // analyzer build + full timing
	RouteMS   float64 `json:"route_ms"`   // global routing + congestion
	CTSMS     float64 `json:"cts_ms"`     // clock-tree synthesis + propagated STA

	Clusters   int     `json:"clusters"`
	PlaceIters int     `json:"place_iters"`
	CGIters    int     `json:"cg_iters"`
	HPWL       float64 `json:"hpwl"`
	Overflow   int     `json:"route_overflow"` // routed demand above capacity
	MaxCong    float64 `json:"max_congestion"` // highest GCell edge utilization
	BinOvf     float64 `json:"bin_overflow"`   // placer bin overflow at stop
	WNSPS      float64 `json:"wns_ps"`       // post-CTS propagated-clock WNS
	TNSPS      float64 `json:"tns_ps"`
	PeakRSSMB  float64 `json:"peak_rss_mb"` // VmHWM after the row, 0 if unknown
}

// flowRun is the BENCH_scale_flow.json document.
type flowRun struct {
	CPUs       int       `json:"cpus"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Workers    int       `json:"workers"`
	Seed       int64     `json:"seed"`
	Rows       []flowRow `json:"rows"`
}

// ms converts an elapsed duration to milliseconds with microsecond grain.
func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// runScaleFlow runs every flow stage — generate, cluster, place, STA, route,
// CTS — once per requested size, timing each stage on its own, and writes
// the machine-readable sweep to outPath. Unlike -scale (placement only),
// this answers "which stage falls over first" as designs grow.
func runScaleFlow(sizes []int, seed int64, workers int, outPath string) {
	f, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	run := flowRun{
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    par.Workers(workers),
		Seed:       seed,
	}
	for _, cells := range sizes {
		spec := designs.ScaleSpec(cells, 4242+seed)

		t0 := time.Now()
		b := designs.Generate(spec)
		genMS := ms(time.Since(t0))
		d := b.Design

		t1 := time.Now()
		hv := d.ToHypergraph()
		cres := cluster.MultilevelFC(hv.H, cluster.Options{
			Seed:    seed,
			Workers: workers,
		})
		clusterMS := ms(time.Since(t1))

		t2 := time.Now()
		pres := place.Global(d, place.Options{Seed: 7, Workers: workers})
		placeMS := ms(time.Since(t2))

		t3 := time.Now()
		an := sta.New(d, b.Cons)
		an.Workers = workers
		sum := an.Timing()
		staMS := ms(time.Since(t3))

		t4 := time.Now()
		rres := route.GlobalRoute(d, route.Options{})
		routeMS := ms(time.Since(t4))

		t5 := time.Now()
		var clk *netlist.Net
		for _, n := range d.Nets {
			if n.Clock {
				clk = n
				break
			}
		}
		if clk != nil {
			copt := cts.Options{BufMaster: d.Lib.Master("CLKBUF_X2"), SkipArrivalMap: true}
			ctsRes := cts.Synthesize(d, clk, copt)
			if len(ctsRes.ArrivalList) > 0 {
				an.SetClockArrivalList(ctsRes.ArrivalList)
				sum = an.Timing()
			}
		}
		ctsMS := ms(time.Since(t5))

		row := flowRow{
			Cells:      cells,
			Insts:      len(d.Insts),
			Nets:       len(d.Nets),
			Pins:       countPins(d),
			GenMS:      genMS,
			ClusterMS:  clusterMS,
			PlaceMS:    placeMS,
			STAMS:      staMS,
			RouteMS:    routeMS,
			CTSMS:      ctsMS,
			Clusters:   cres.NumClusters,
			PlaceIters: pres.Iterations,
			CGIters:    pres.CGIterations,
			HPWL:       pres.HPWL,
			Overflow:   rres.Overflow,
			MaxCong:    rres.MaxCongestion,
			BinOvf:     pres.Overflow,
			WNSPS:      sum.WNS * 1e12,
			TNSPS:      sum.TNS * 1e12,
			PeakRSSMB:  peakRSSMB(),
		}
		run.Rows = append(run.Rows, row)
		fmt.Printf("flow %8d cells: gen %7.0f cluster %7.0f place %7.0f sta %7.0f route %7.0f cts %7.0f ms, wns %.1f ps, rss %.0f MB\n",
			cells, genMS, clusterMS, placeMS, staMS, routeMS, ctsMS, row.WNSPS, row.PeakRSSMB)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(run); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("flow-scale sweep written to %s\n", outPath)
}
