package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ppaclust/internal/designs"
	"ppaclust/internal/experiments"
	"ppaclust/internal/flow"
)

// tdRun is the BENCH_timing_driven.json document. Every row field is a pure
// quality metric — no wall-clock, worker counts or memory — so runs at
// different worker counts must produce byte-identical files; wall-clock is
// printed to stdout instead.
type tdRun struct {
	Protocol string              `json:"protocol"` // "tables" or a size list
	Seed     int64               `json:"seed"`
	Fast     bool                `json:"fast,omitempty"`
	Rows     []experiments.TDRow `json:"rows"`
}

// runTimingDriven drives the -timing-driven A/B mode: spec "tables" runs the
// Table-3/4 protocols through the experiments suite; a size list like "10k"
// runs the flat default flow A/B on generated scale designs (the cheap smoke
// path CI uses). With sweep set, the whole comparison repeats at
// W=1/2/4/8 and any quality-field difference is a fatal error — the
// bit-identity contract applied to the feedback checkpoints.
func runTimingDriven(spec string, fast bool, seed int64, workers int, sweep bool, outPath string) {
	f, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	counts := []int{workers}
	if sweep {
		counts = sweepWorkerCounts
	}
	var ref []experiments.TDRow
	for wi, w := range counts {
		t0 := time.Now()
		rows := timingDrivenRows(spec, fast, seed, w)
		ms := float64(time.Since(t0).Microseconds()) / 1000
		if wi == 0 {
			ref = rows
			for _, r := range rows {
				fmt.Printf("timing-driven %-10s %-8s %7d insts: hpwl %.4g -> %.4g (x%.4f), tns %+.3f -> %+.3f ns (gain %+.3f), maxcong %.3f -> %.3f\n",
					r.Design, r.Tool, r.Insts, r.BaseHPWL, r.TDHPWL, r.HPWLRatio,
					r.BaseTNSns, r.TDTNSns, r.TNSGainNs, r.BaseMaxCongestion, r.TDMaxCongestion)
			}
			fmt.Printf("timing-driven A/B done in %.1f ms (workers=%d)\n", ms, w)
			continue
		}
		fmt.Printf("timing-driven A/B re-run at workers=%d: %.1f ms\n", w, ms)
		if len(rows) != len(ref) {
			fmt.Fprintf(os.Stderr, "ppabench: workers=%d produced %d rows, workers=%d produced %d\n",
				counts[0], len(ref), w, len(rows))
			os.Exit(1)
		}
		for i := range rows {
			if rows[i] != ref[i] {
				fmt.Fprintf(os.Stderr, "ppabench: quality mismatch at workers=%d, row %s/%s:\n  w=%d: %+v\n  w=%d: %+v\n",
					w, rows[i].Design, rows[i].Tool, counts[0], ref[i], w, rows[i])
				os.Exit(1)
			}
		}
	}
	if sweep {
		fmt.Printf("timing-driven quality fields bit-identical across workers=%v\n", sweepWorkerCounts)
	}
	doc := tdRun{Protocol: spec, Seed: seed, Fast: fast, Rows: ref}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ppabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("timing-driven A/B written to %s\n", outPath)
}

// timingDrivenRows runs one full A/B pass at the given worker count.
func timingDrivenRows(spec string, fast bool, seed int64, workers int) []experiments.TDRow {
	if spec == "tables" {
		s := experiments.NewSuite(fast, seed, workers)
		return check(s.TimingDrivenAB())
	}
	sizes := check(parseScaleSizes(spec))
	var rows []experiments.TDRow
	for _, cells := range sizes {
		b := designs.GenerateWorkers(designs.ScaleSpec(cells, 4242+seed), workers)
		base := check(flow.RunDefault(b, flow.Options{Seed: seed, Workers: workers}))
		td := check(flow.RunDefault(b, flow.Options{Seed: seed, Workers: workers,
			TimingDriven: true, RoutabilityDriven: true}))
		rows = append(rows, experiments.MakeTDRow(
			fmt.Sprintf("scale-%d", cells), "flat", len(b.Design.Insts), base, td))
	}
	return rows
}
