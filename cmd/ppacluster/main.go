// Command ppacluster runs and compares the clustering methods (PPA-aware
// multilevel FC, plain MFC, Leiden, Louvain, hierarchy-only) on one
// benchmark and prints clustering-quality metrics: cluster count, cut size,
// weighted-average Rent exponent and modularity.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ppaclust/internal/cluster"
	"ppaclust/internal/community"
	"ppaclust/internal/designs"
	"ppaclust/internal/hier"
	"ppaclust/internal/partition"
	"ppaclust/internal/sta"
)

func main() {
	design := flag.String("design", "aes", "benchmark: aes|jpeg|ariane|bp|mb|mpg")
	seed := flag.Int64("seed", 1, "random seed")
	target := flag.Int("clusters", 0, "FC target cluster count (0 = auto)")
	flag.Parse()

	spec, ok := designs.Named(*design)
	if !ok {
		fmt.Fprintf(os.Stderr, "ppacluster: unknown design %q\n", *design)
		os.Exit(2)
	}
	b := designs.Generate(spec)
	d := b.Design
	view := d.ToHypergraph()
	h := view.H
	g := h.CliqueExpand()
	fmt.Printf("%s: %d instances, %d hyperedges, %d pins\n\n",
		*design, h.NumVertices(), h.NumEdges(), h.NumPins())

	report := func(name string, assign []int, k int, dt time.Duration) {
		fmt.Printf("%-12s clusters=%-6d cut=%-10.1f Ravg=%-7.4f Q=%-7.4f time=%v\n",
			name, k, h.CutSize(assign), h.WeightedAvgRent(assign),
			community.Modularity(g, assign, 1), dt)
	}

	// Hierarchy-based clustering (Algorithm 2).
	t0 := time.Now()
	if hres, ok := hier.Cluster(d, h); ok {
		report("hierarchy", hres.Assign, hres.Clusters, time.Since(t0))
	}

	// PPA-aware multilevel FC.
	t0 = time.Now()
	groups := []int(nil)
	if hres, ok := hier.Cluster(d, h); ok {
		groups = hres.Assign
	}
	an := sta.New(d, b.Cons)
	paths := an.TopPaths(100000)
	pathNets := make([][]int, len(paths))
	slacks := make([]float64, len(paths))
	for i, p := range paths {
		slacks[i] = p.Slack
		for _, netID := range p.Nets {
			if e := view.EdgeOfNet[netID]; e >= 0 {
				pathNets[i] = append(pathNets[i], e)
			}
		}
	}
	tCost := cluster.TimingCosts(pathNets, slacks, b.Cons.ClockPeriod, h.NumEdges())
	netAct := an.NetActivity()
	edgeAct := make([]float64, h.NumEdges())
	for e, id := range view.NetOfEdge {
		edgeAct[e] = netAct[id]
	}
	ppa := cluster.MultilevelFC(h, cluster.Options{
		Alpha: 1, Beta: 1, Gamma: 1,
		TargetClusters: *target, Seed: *seed, Groups: groups,
		EdgeTimingCost: tCost,
		EdgeSwitchCost: cluster.SwitchCosts(edgeAct, 2),
	})
	report("ppa-aware", ppa.Assign, ppa.NumClusters, time.Since(t0))
	fmt.Printf("%-12s   levels=%d singletons=%d\n", "", ppa.Levels, ppa.Singletons)

	// Plain MFC.
	t0 = time.Now()
	mfc := cluster.MultilevelFC(h, cluster.Options{Alpha: 1, TargetClusters: *target, Seed: *seed})
	report("mfc", mfc.Assign, mfc.NumClusters, time.Since(t0))

	// Min-cut recursive bisection (FM), as a partitioning-style baseline.
	t0 = time.Now()
	mc := partition.KWay(h, ppa.NumClusters, partition.Options{Seed: *seed})
	report("mincut-fm", mc, ppa.NumClusters, time.Since(t0))

	// Louvain / Leiden.
	t0 = time.Now()
	lv := community.Louvain(g, community.Options{Seed: *seed})
	report("louvain", lv, community.NumCommunities(lv), time.Since(t0))
	t0 = time.Now()
	ld := community.Leiden(g, community.Options{Seed: *seed})
	report("leiden", ld, community.NumCommunities(ld), time.Since(t0))
}
