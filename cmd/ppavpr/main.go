// Command ppavpr demonstrates the virtualized P&R framework: it clusters a
// benchmark, induces the sub-netlist of each large cluster, sweeps the 20
// candidate shapes with exact V-P&R, and prints the per-shape costs plus the
// selected winner (Figure 3 of the paper).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ppaclust/internal/cluster"
	"ppaclust/internal/designs"
	"ppaclust/internal/vpr"
)

func main() {
	design := flag.String("design", "aes", "benchmark: aes|jpeg|ariane|bp|mb|mpg")
	seed := flag.Int64("seed", 1, "random seed")
	minInsts := flag.Int("min", 50, "minimum cluster size for shape selection")
	maxClusters := flag.Int("max-clusters", 4, "stop after this many shaped clusters")
	verbose := flag.Bool("v", false, "print every candidate's cost")
	flag.Parse()

	spec, ok := designs.Named(*design)
	if !ok {
		fmt.Fprintf(os.Stderr, "ppavpr: unknown design %q\n", *design)
		os.Exit(2)
	}
	b := designs.Generate(spec)
	view := b.Design.ToHypergraph()
	res := cluster.MultilevelFC(view.H, cluster.Options{Seed: *seed})
	fmt.Printf("%s: %d clusters\n", *design, res.NumClusters)

	members := make([][]int, res.NumClusters)
	for v, c := range res.Assign {
		members[c] = append(members[c], v)
	}
	shaped := 0
	for c := 0; c < res.NumClusters && shaped < *maxClusters; c++ {
		if len(members[c]) < *minInsts {
			continue
		}
		sub, err := vpr.InduceSubNetlist(b.Design, members[c])
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppavpr: %v\n", err)
			os.Exit(1)
		}
		t0 := time.Now()
		best, evals := vpr.BestShape(sub, vpr.Runner{Opt: vpr.Options{Seed: *seed}})
		dt := time.Since(t0)
		fmt.Printf("\ncluster %d: %d cells, %d nets, %d boundary ports (%v for 20 shapes)\n",
			c, len(sub.Insts), len(sub.Nets), len(sub.Ports), dt)
		if *verbose {
			for _, ev := range evals {
				marker := " "
				if ev.Shape == best {
					marker = "*"
				}
				fmt.Printf("  %s AR=%.2f util=%.2f  costHPWL=%.4f costCong=%.4f total=%.4f\n",
					marker, ev.Shape.AspectRatio, ev.Shape.Utilization,
					ev.CostHPWL, ev.CostCong, ev.TotalCost)
			}
		}
		fmt.Printf("  best shape: AR=%.2f util=%.2f\n", best.AspectRatio, best.Utilization)
		shaped++
	}
	if shaped == 0 {
		fmt.Printf("no cluster above %d instances; try -min with a smaller value\n", *minInsts)
	}
}
